package transport

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"github.com/secarchive/sec/internal/core"
	"github.com/secarchive/sec/internal/erasure"
	"github.com/secarchive/sec/internal/store"
)

// Archive-level operation codes: one RPC per whole-archive operation,
// served by a gateway (internal/gateway) instead of a storage node. Added
// after opDeleteBatch; new codes must keep appending so wire values stay
// stable across versions.
const (
	opArchCreate byte = iota + 10
	opArchCommit
	opArchGet
	opArchGetAll
	opArchLog
	opArchInfo
	opArchCompact
	opArchScrub
	opArchRepair
)

// ErrNotServed reports that the peer answered an archive-level op with a
// plain statusError, which is what a legacy peer (a storage node, or a
// gateway predating these ops) does for any op code it does not know.
var ErrNotServed = errors.New("transport: peer does not serve archive ops")

// ArchiveBackend is the archive-level service contract: everything a
// gateway offers a client, expressed over whole archives instead of
// shards. The transport serves any implementation (Server +
// WithArchiveBackend) and provides one over the wire (ArchiveClient), so
// an embedded gateway and a remote one are interchangeable behind this
// interface.
//
// The version argument of Retrieve and RetrieveAll selects a version
// number starting at 1; 0 selects the latest version at request time.
// Commit's expect argument is an optimistic precondition: the commit
// applies only if the archive currently has exactly expect versions
// (a store.ErrConflict-wrapping error otherwise); expect < 0 skips the
// check.
type ArchiveBackend interface {
	Create(ctx context.Context, name string, spec ArchiveSpec) (ArchiveInfo, error)
	Commit(ctx context.Context, name string, expect int, object []byte) (core.CommitInfo, error)
	Retrieve(ctx context.Context, name string, version int) (ArchiveVersion, error)
	RetrieveAll(ctx context.Context, name string, version int) ([][]byte, core.RetrievalStats, error)
	Log(ctx context.Context, name string) ([]ArchiveLogEntry, error)
	Info(ctx context.Context, name string) (ArchiveInfo, error)
	Compact(ctx context.Context, name string, maxChain int) (CompactReport, error)
	Scrub(ctx context.Context, name string, repair bool) (core.ScrubReport, error)
	Repair(ctx context.Context, name string, node int) (core.RepairReport, error)
}

// ArchiveSpec describes the configuration of an archive to create, in the
// same string forms the manifest persists (core.Manifest without entries).
// Zero-valued policy fields keep their defaults.
type ArchiveSpec struct {
	Scheme            string `json:"scheme"`
	Code              string `json:"code"`
	Field             string `json:"field,omitempty"`
	N                 int    `json:"n"`
	K                 int    `json:"k"`
	BlockSize         int    `json:"block_size"`
	PunctureDeltas    int    `json:"puncture_deltas,omitempty"`
	Placement         string `json:"placement,omitempty"`
	MaxChainLength    int    `json:"max_chain_length,omitempty"`
	CheckpointEvery   int    `json:"checkpoint_every,omitempty"`
	CompactGammaLimit int    `json:"compact_gamma_limit,omitempty"`
	CompressDeltas    bool   `json:"compress_deltas,omitempty"`
	CompressGammaMax  int    `json:"compress_gamma_max,omitempty"`
	ReadCacheBytes    int    `json:"read_cache_bytes,omitempty"`
}

// Manifest expands the spec into an entry-less manifest for the given
// archive name, the form core.Open accepts to create a fresh archive.
// An empty scheme or code takes the paper's defaults (basic-sec over a
// non-systematic Cauchy code), mirroring the empty-placement default.
func (s ArchiveSpec) Manifest(name string) core.Manifest {
	if s.Scheme == "" {
		s.Scheme = core.BasicSEC.String()
	}
	if s.Code == "" {
		s.Code = erasure.NonSystematicCauchy.String()
	}
	return core.Manifest{
		Name:              name,
		Scheme:            s.Scheme,
		Code:              s.Code,
		Field:             s.Field,
		N:                 s.N,
		K:                 s.K,
		BlockSize:         s.BlockSize,
		PunctureDeltas:    s.PunctureDeltas,
		Placement:         s.Placement,
		MaxChainLength:    s.MaxChainLength,
		CheckpointEvery:   s.CheckpointEvery,
		CompactGammaLimit: s.CompactGammaLimit,
		CompressDeltas:    s.CompressDeltas,
		CompressGammaMax:  s.CompressGammaMax,
		ReadCacheBytes:    s.ReadCacheBytes,
	}
}

// SpecFromManifest recovers the creation spec of an existing manifest
// (dropping its entries), so a client can clone an archive's shape.
func SpecFromManifest(m core.Manifest) ArchiveSpec {
	return ArchiveSpec{
		Scheme:            m.Scheme,
		Code:              m.Code,
		Field:             m.Field,
		N:                 m.N,
		K:                 m.K,
		BlockSize:         m.BlockSize,
		PunctureDeltas:    m.PunctureDeltas,
		Placement:         m.Placement,
		MaxChainLength:    m.MaxChainLength,
		CheckpointEvery:   m.CheckpointEvery,
		CompactGammaLimit: m.CompactGammaLimit,
		CompressDeltas:    m.CompressDeltas,
		CompressGammaMax:  m.CompressGammaMax,
		ReadCacheBytes:    m.ReadCacheBytes,
	}
}

// ArchiveVersion is one retrieved version with its retrieval accounting.
type ArchiveVersion struct {
	// Version is the version number actually served (the latest at
	// request time when the request asked for 0).
	Version int `json:"version"`
	// Data is the decoded object.
	Data []byte `json:"-"`
	// Stats is the archive-side retrieval accounting for this read.
	Stats core.RetrievalStats `json:"stats"`
}

// ArchiveLogEntry describes one version in an archive's history, combining
// the manifest entry with the chain shape retrieval would traverse.
type ArchiveLogEntry struct {
	Version    int   `json:"version"`
	Full       bool  `json:"full"`
	Delta      bool  `json:"delta"`
	Gamma      int   `json:"gamma"`
	Length     int   `json:"length"`
	Base       int   `json:"base,omitempty"`
	Checkpoint bool  `json:"checkpoint,omitempty"`
	Compressed bool  `json:"compressed,omitempty"`
	Support    []int `json:"support,omitempty"`
	// ChainDepth counts the codewords retrieval of this version decodes;
	// PlannedReads counts the node reads it costs (paper formulas (3)/(4)
	// generalized over the compacted chain).
	ChainDepth   int `json:"chain_depth"`
	PlannedReads int `json:"planned_reads"`
}

// ArchiveNodeStatus pairs a cluster node's health snapshot with a
// liveness probe taken at Info time.
type ArchiveNodeStatus struct {
	Health store.NodeHealth `json:"health"`
	Up     bool             `json:"up"`
}

// ArchiveInfo is the gateway's description of one archive and the cluster
// behind it.
type ArchiveInfo struct {
	Manifest core.Manifest `json:"manifest"`
	// Versions is the number of committed versions; Capacity the object
	// byte capacity (k*blockSize).
	Versions int `json:"versions"`
	Capacity int `json:"capacity"`
	// Cache reports the shared decoded-version read cache, nil when the
	// archive has no cache budget.
	Cache *core.CacheStats `json:"cache,omitempty"`
	// QueuedWriters is the number of writers currently admitted or
	// waiting on this archive's commit queue.
	QueuedWriters int `json:"queued_writers"`
	// Nodes is the per-node health and probe snapshot.
	Nodes []ArchiveNodeStatus `json:"nodes,omitempty"`
}

// CompactReport is the result of a gateway-driven compaction pass,
// including the crash-safe reclaim that follows the manifest persist.
type CompactReport struct {
	Info core.CompactionInfo `json:"info"`
	// Deleted and Orphans count superseded shards reclaimed after the
	// new manifest was persisted, and those left behind on down nodes.
	Deleted int `json:"deleted"`
	Orphans int `json:"orphans"`
}

// errArchMalformed reports an archive-op payload that does not parse.
var errArchMalformed = errors.New("transport: malformed archive payload")

// encodeArchCommit frames a commit request payload: u32(expect+1)
// followed by the object bytes. expect < 0 (no precondition) travels as 0.
func encodeArchCommit(expect int, object []byte) ([]byte, error) {
	if expect < -1 {
		return nil, fmt.Errorf("transport: invalid expected version %d", expect)
	}
	if expect >= 1<<31 {
		return nil, fmt.Errorf("transport: expected version %d overflows the wire", expect)
	}
	// The commit must fit one request frame alongside its header; refuse
	// here so the caller gets a typed size error instead of a mid-write
	// transport failure.
	if len(object) > maxFrame-64 {
		return nil, fmt.Errorf("transport: %d-byte commit exceeds the frame limit: %w", len(object), errFrameTooLarge)
	}
	body := make([]byte, 0, 4+len(object))
	body = binary.BigEndian.AppendUint32(body, uint32(expect+1))
	return append(body, object...), nil
}

// decodeArchCommit parses a commit request payload.
func decodeArchCommit(payload []byte) (expect int, object []byte, err error) {
	if len(payload) < 4 {
		return 0, nil, errArchMalformed
	}
	expect = int(binary.BigEndian.Uint32(payload)) - 1
	return expect, payload[4:], nil
}

// archVersionMeta is the JSON chunk preceding the raw object bytes in a
// retrieve response.
type archVersionMeta struct {
	Version int                 `json:"version"`
	Stats   core.RetrievalStats `json:"stats"`
}

// encodeArchVersion frames a retrieve response: u32(len(meta)) metaJSON
// followed by the raw object bytes (which stream across statusPartial
// continuation frames when they outgrow one frame).
func encodeArchVersion(v ArchiveVersion) ([]byte, error) {
	meta, err := json.Marshal(archVersionMeta{Version: v.Version, Stats: v.Stats})
	if err != nil {
		return nil, fmt.Errorf("transport: encoding version meta: %w", err)
	}
	body := make([]byte, 0, 4+len(meta)+len(v.Data))
	body = binary.BigEndian.AppendUint32(body, uint32(len(meta)))
	body = append(body, meta...)
	return append(body, v.Data...), nil
}

// decodeArchVersion parses a retrieve response.
func decodeArchVersion(payload []byte) (ArchiveVersion, error) {
	meta, rest, err := readChunk(payload)
	if err != nil {
		return ArchiveVersion{}, errArchMalformed
	}
	var m archVersionMeta
	if err := json.Unmarshal(meta, &m); err != nil {
		return ArchiveVersion{}, fmt.Errorf("transport: decoding version meta: %w", err)
	}
	return ArchiveVersion{Version: m.Version, Data: rest, Stats: m.Stats}, nil
}

// encodeArchVersions frames a retrieve-all response: u32(len(meta))
// metaJSON u32(count) then count (u32(len) bytes) chunks, versions 1..count
// in order.
func encodeArchVersions(versions [][]byte, stats core.RetrievalStats) ([]byte, error) {
	meta, err := json.Marshal(archVersionMeta{Version: len(versions), Stats: stats})
	if err != nil {
		return nil, fmt.Errorf("transport: encoding version meta: %w", err)
	}
	size := 4 + len(meta) + 4
	for _, v := range versions {
		size += 4 + len(v)
	}
	body := make([]byte, 0, size)
	body = binary.BigEndian.AppendUint32(body, uint32(len(meta)))
	body = append(body, meta...)
	body = binary.BigEndian.AppendUint32(body, uint32(len(versions)))
	for _, v := range versions {
		body = binary.BigEndian.AppendUint32(body, uint32(len(v)))
		body = append(body, v...)
	}
	return body, nil
}

// decodeArchVersions parses a retrieve-all response.
func decodeArchVersions(payload []byte) ([][]byte, core.RetrievalStats, error) {
	meta, rest, err := readChunk(payload)
	if err != nil {
		return nil, core.RetrievalStats{}, errArchMalformed
	}
	var m archVersionMeta
	if err := json.Unmarshal(meta, &m); err != nil {
		return nil, core.RetrievalStats{}, fmt.Errorf("transport: decoding version meta: %w", err)
	}
	count, rest, err := readBatchCount(rest, 4)
	if err != nil {
		return nil, core.RetrievalStats{}, errArchMalformed
	}
	versions := make([][]byte, count)
	for i := range versions {
		versions[i], rest, err = readChunk(rest)
		if err != nil {
			return nil, core.RetrievalStats{}, errArchMalformed
		}
	}
	if len(rest) != 0 {
		return nil, core.RetrievalStats{}, errArchMalformed
	}
	return versions, m.Stats, nil
}

// archName validates and returns the archive name of a request.
func archName(id store.ShardID) (string, error) {
	if id.Object == "" {
		return "", fmt.Errorf("transport: archive op without archive name: %w", errArchMalformed)
	}
	return id.Object, nil
}

// archFail maps a backend error onto a wire status and provenance
// payload, attributing it to the serving gateway when the backend did not
// already name a culprit.
func archFail(err error, op, name string) (byte, []byte) {
	var se *store.ShardError
	if !errors.As(err, &se) {
		err = &store.ShardError{Node: "gateway", Op: op, Shard: store.ShardID{Object: name}, Err: err}
	}
	return statusFor(err), encodeWireError(err)
}

// handleArchive dispatches one archive-level request to the server's
// backend. A server without a backend (a plain storage node) answers
// statusError, which clients surface as ErrNotServed.
func (s *Server) handleArchive(ctx context.Context, req request) (status byte, payload []byte) {
	if s.archive == nil {
		return statusError, []byte("transport: archive ops not served")
	}
	name, err := archName(req.id)
	if err != nil {
		return statusError, []byte(err.Error())
	}
	switch req.op {
	case opArchCreate:
		s.reqs.archCreates.Add(1)
		var spec ArchiveSpec
		if err := json.Unmarshal(req.payload, &spec); err != nil {
			return statusError, []byte(fmt.Sprintf("transport: decoding archive spec: %v", err))
		}
		info, err := s.archive.Create(ctx, name, spec)
		if err != nil {
			return archFail(err, "arch-create", name)
		}
		return jsonResponse(info)
	case opArchCommit:
		s.reqs.archCommits.Add(1)
		expect, object, err := decodeArchCommit(req.payload)
		if err != nil {
			return statusError, []byte(err.Error())
		}
		s.reqs.bytesWritten.Add(uint64(len(object)))
		ci, err := s.archive.Commit(ctx, name, expect, object)
		if err != nil {
			return archFail(err, "arch-commit", name)
		}
		return jsonResponse(ci)
	case opArchGet:
		s.reqs.archGets.Add(1)
		v, err := s.archive.Retrieve(ctx, name, req.id.Row)
		if err != nil {
			return archFail(err, "arch-get", name)
		}
		s.reqs.bytesRead.Add(uint64(len(v.Data)))
		body, err := encodeArchVersion(v)
		if err != nil {
			return archFail(err, "arch-get", name)
		}
		return statusOK, body
	case opArchGetAll:
		s.reqs.archGetAlls.Add(1)
		versions, stats, err := s.archive.RetrieveAll(ctx, name, req.id.Row)
		if err != nil {
			return archFail(err, "arch-get-all", name)
		}
		for _, v := range versions {
			s.reqs.bytesRead.Add(uint64(len(v)))
		}
		body, err := encodeArchVersions(versions, stats)
		if err != nil {
			return archFail(err, "arch-get-all", name)
		}
		return statusOK, body
	case opArchLog:
		s.reqs.archLogs.Add(1)
		entries, err := s.archive.Log(ctx, name)
		if err != nil {
			return archFail(err, "arch-log", name)
		}
		return jsonResponse(entries)
	case opArchInfo:
		s.reqs.archInfos.Add(1)
		info, err := s.archive.Info(ctx, name)
		if err != nil {
			return archFail(err, "arch-info", name)
		}
		return jsonResponse(info)
	case opArchCompact:
		s.reqs.archCompacts.Add(1)
		report, err := s.archive.Compact(ctx, name, req.id.Row)
		if err != nil {
			return archFail(err, "arch-compact", name)
		}
		return jsonResponse(report)
	case opArchScrub:
		s.reqs.archScrubs.Add(1)
		report, err := s.archive.Scrub(ctx, name, req.id.Row != 0)
		if err != nil {
			return archFail(err, "arch-scrub", name)
		}
		return jsonResponse(report)
	case opArchRepair:
		s.reqs.archRepairs.Add(1)
		report, err := s.archive.Repair(ctx, name, req.id.Row)
		if err != nil {
			return archFail(err, "arch-repair", name)
		}
		return jsonResponse(report)
	default:
		return statusError, []byte(fmt.Sprintf("transport: unknown archive op %d", req.op))
	}
}

// jsonResponse marshals a structured archive response.
func jsonResponse(v any) (byte, []byte) {
	body, err := json.Marshal(v)
	if err != nil {
		return statusError, []byte(fmt.Sprintf("transport: encoding response: %v", err))
	}
	return statusOK, body
}

// ArchiveClient speaks the archive-level ops to a remote gateway over the
// framed transport, reusing the pooled-connection, deadline, and retry
// machinery of RemoteNode (WithTimeout, WithPoolSize, WithRetryPolicy all
// apply). It implements ArchiveBackend, so code written against the
// backend interface runs identically against an embedded gateway and a
// remote one. Responses larger than one frame arrive as statusPartial
// continuations and are reassembled transparently.
type ArchiveClient struct {
	n *RemoteNode
}

// NewArchiveClient returns a client for the gateway at addr. The id
// appears as the Node field of returned ShardErrors, attributing failures
// to the gateway they came from.
func NewArchiveClient(id, addr string, opts ...ClientOption) *ArchiveClient {
	return &ArchiveClient{n: NewRemoteNode(id, addr, opts...)}
}

// ID returns the client's gateway identifier.
func (c *ArchiveClient) ID() string { return c.n.ID() }

// Addr returns the gateway address.
func (c *ArchiveClient) Addr() string { return c.n.Addr() }

// Close releases the connection pool. It is safe to call concurrently
// with in-flight operations, which fail fast.
func (c *ArchiveClient) Close() error { return c.n.Close() }

// Available reports whether the gateway answers its ping within the ping
// timeout.
func (c *ArchiveClient) Available(ctx context.Context) bool { return c.n.Available(ctx) }

// markNotServed rewrites a peer's rejection of archive ops into a typed
// ErrNotServed wrap. A legacy peer (predating these ops) answers
// "transport: unknown op N"; a current storage node without a gateway
// answers "transport: archive ops not served". Both mean the same thing
// to the caller: dial a gateway instead.
func markNotServed(err error) {
	var se *store.ShardError
	if !errors.As(err, &se) || se.Err == nil {
		return
	}
	msg := se.Err.Error()
	if strings.Contains(msg, "unknown op") || strings.Contains(msg, "archive ops not served") {
		se.Err = fmt.Errorf("%w: %w", ErrNotServed, se.Err)
	}
}

// call performs one archive-op round trip and converts a peer's
// does-not-serve-archives rejection into ErrNotServed.
func (c *ArchiveClient) call(ctx context.Context, op byte, opName string, id store.ShardID, payload []byte) ([]byte, error) {
	resp, err := c.n.roundTrip(ctx, opName, request{op: op, id: id, payload: payload})
	if err != nil {
		markNotServed(err)
		return nil, err
	}
	return resp, nil
}

// Create asks the gateway to create archive name with the given spec.
func (c *ArchiveClient) Create(ctx context.Context, name string, spec ArchiveSpec) (ArchiveInfo, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return ArchiveInfo{}, fmt.Errorf("transport: encoding archive spec: %w", err)
	}
	resp, err := c.call(ctx, opArchCreate, "arch-create", store.ShardID{Object: name}, payload)
	if err != nil {
		return ArchiveInfo{}, err
	}
	var info ArchiveInfo
	if err := json.Unmarshal(resp, &info); err != nil {
		return ArchiveInfo{}, fmt.Errorf("transport: decoding archive info: %w", err)
	}
	return info, nil
}

// Commit appends object as the archive's next version. expect >= 0
// demands the archive currently hold exactly that many versions.
func (c *ArchiveClient) Commit(ctx context.Context, name string, expect int, object []byte) (core.CommitInfo, error) {
	payload, err := encodeArchCommit(expect, object)
	if err != nil {
		return core.CommitInfo{}, err
	}
	resp, err := c.call(ctx, opArchCommit, "arch-commit", store.ShardID{Object: name}, payload)
	if err != nil {
		return core.CommitInfo{}, err
	}
	var ci core.CommitInfo
	if err := json.Unmarshal(resp, &ci); err != nil {
		return core.CommitInfo{}, fmt.Errorf("transport: decoding commit info: %w", err)
	}
	return ci, nil
}

// Retrieve fetches one version (0 = latest).
func (c *ArchiveClient) Retrieve(ctx context.Context, name string, version int) (ArchiveVersion, error) {
	resp, err := c.call(ctx, opArchGet, "arch-get", store.ShardID{Object: name, Row: version}, nil)
	if err != nil {
		return ArchiveVersion{}, err
	}
	return decodeArchVersion(resp)
}

// RetrieveAll fetches versions 1..version (0 = through the latest).
func (c *ArchiveClient) RetrieveAll(ctx context.Context, name string, version int) ([][]byte, core.RetrievalStats, error) {
	resp, err := c.call(ctx, opArchGetAll, "arch-get-all", store.ShardID{Object: name, Row: version}, nil)
	if err != nil {
		return nil, core.RetrievalStats{}, err
	}
	return decodeArchVersions(resp)
}

// Log fetches the archive's version history.
func (c *ArchiveClient) Log(ctx context.Context, name string) ([]ArchiveLogEntry, error) {
	resp, err := c.call(ctx, opArchLog, "arch-log", store.ShardID{Object: name}, nil)
	if err != nil {
		return nil, err
	}
	var entries []ArchiveLogEntry
	if err := json.Unmarshal(resp, &entries); err != nil {
		return nil, fmt.Errorf("transport: decoding archive log: %w", err)
	}
	return entries, nil
}

// Info fetches the archive description and cluster health snapshot.
func (c *ArchiveClient) Info(ctx context.Context, name string) (ArchiveInfo, error) {
	resp, err := c.call(ctx, opArchInfo, "arch-info", store.ShardID{Object: name}, nil)
	if err != nil {
		return ArchiveInfo{}, err
	}
	var info ArchiveInfo
	if err := json.Unmarshal(resp, &info); err != nil {
		return ArchiveInfo{}, fmt.Errorf("transport: decoding archive info: %w", err)
	}
	return info, nil
}

// Compact bounds the archive's chain depth to maxChain (0 = the archive's
// configured policy).
func (c *ArchiveClient) Compact(ctx context.Context, name string, maxChain int) (CompactReport, error) {
	resp, err := c.call(ctx, opArchCompact, "arch-compact", store.ShardID{Object: name, Row: maxChain}, nil)
	if err != nil {
		return CompactReport{}, err
	}
	var report CompactReport
	if err := json.Unmarshal(resp, &report); err != nil {
		return CompactReport{}, fmt.Errorf("transport: decoding compact report: %w", err)
	}
	return report, nil
}

// Scrub verifies every stored shard, optionally repairing damage.
func (c *ArchiveClient) Scrub(ctx context.Context, name string, repair bool) (core.ScrubReport, error) {
	row := 0
	if repair {
		row = 1
	}
	resp, err := c.call(ctx, opArchScrub, "arch-scrub", store.ShardID{Object: name, Row: row}, nil)
	if err != nil {
		return core.ScrubReport{}, err
	}
	var report core.ScrubReport
	if err := json.Unmarshal(resp, &report); err != nil {
		return core.ScrubReport{}, fmt.Errorf("transport: decoding scrub report: %w", err)
	}
	return report, nil
}

// Repair reconstructs the archive's shards on the given cluster node.
func (c *ArchiveClient) Repair(ctx context.Context, name string, node int) (core.RepairReport, error) {
	resp, err := c.call(ctx, opArchRepair, "arch-repair", store.ShardID{Object: name, Row: node}, nil)
	if err != nil {
		return core.RepairReport{}, err
	}
	var report core.RepairReport
	if err := json.Unmarshal(resp, &report); err != nil {
		return core.RepairReport{}, fmt.Errorf("transport: decoding repair report: %w", err)
	}
	return report, nil
}
