package transport

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/secarchive/sec/internal/faults"
	"github.com/secarchive/sec/internal/store"
)

// killFirstConns closes the first n accepted connections on their first
// read, a deterministic stand-in for a flaky network path.
type killFirstConns struct {
	mu        sync.Mutex
	remaining int
}

func (k *killFirstConns) wrap(c net.Conn) net.Conn {
	k.mu.Lock()
	kill := k.remaining > 0
	if kill {
		k.remaining--
	}
	k.mu.Unlock()
	if kill {
		return &dyingConn{Conn: c}
	}
	return c
}

type dyingConn struct{ net.Conn }

func (c *dyingConn) Read(p []byte) (int, error) {
	_ = c.Conn.Close()
	return 0, errors.New("killed by test")
}

func TestRetryPolicySurvivesDyingConnections(t *testing.T) {
	mem := store.NewMemNode("backing")
	killer := &killFirstConns{remaining: 3}
	srv := NewServer(mem, WithConnWrapper(killer.wrap))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })

	// Without a retry policy, the first operation fails: its fresh
	// connection dies and the single stale-conn re-dial does not apply.
	bare := NewRemoteNode("bare", addr.String(), WithTimeout(2*time.Second))
	id := store.ShardID{Object: "o", Row: 0}
	if err := bare.Put(t.Context(), id, []byte{1}); !errors.Is(err, store.ErrNodeDown) {
		t.Fatalf("Put without retry = %v, want ErrNodeDown", err)
	}
	_ = bare.Close()

	killer.mu.Lock()
	killer.remaining = 3
	killer.mu.Unlock()

	// With a retry budget covering the dead connections, the same
	// operation sequence succeeds.
	client := NewRemoteNode("retrying", addr.String(),
		WithTimeout(2*time.Second),
		WithRetryPolicy(store.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond, Jitter: 0.5}))
	t.Cleanup(func() { _ = client.Close() })
	if err := client.Put(t.Context(), id, []byte{42}); err != nil {
		t.Fatalf("Put with retry: %v", err)
	}
	got, err := client.Get(t.Context(), id)
	if err != nil || !bytes.Equal(got, []byte{42}) {
		t.Fatalf("Get with retry = %v, %v", got, err)
	}
}

func TestRetryPolicyDoesNotRetryServerAnswers(t *testing.T) {
	mem := store.NewMemNode("backing")
	srv := NewServer(mem)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := NewRemoteNode("r", addr.String(),
		WithTimeout(2*time.Second),
		WithRetryPolicy(store.RetryPolicy{MaxAttempts: 4}))
	t.Cleanup(func() { _ = client.Close() })

	// ErrNotFound is an authoritative server answer: exactly one request
	// must reach the node, not four.
	start := time.Now()
	if _, err := client.Get(t.Context(), store.ShardID{Object: "absent"}); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("Get = %v, want ErrNotFound", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("ErrNotFound took %v; was it retried?", elapsed)
	}
	if gets := srv.RequestStats().Gets; gets != 1 {
		t.Errorf("server saw %d gets, want 1 (no retries of an answered request)", gets)
	}
}

func TestRetryPolicyStopsOnCancel(t *testing.T) {
	// Nothing listens on this address: every attempt fails at dial.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	client := NewRemoteNode("r", addr,
		WithTimeout(200*time.Millisecond),
		WithRetryPolicy(store.RetryPolicy{MaxAttempts: 100, BaseDelay: 10 * time.Millisecond}))
	t.Cleanup(func() { _ = client.Close() })
	ctx, cancel := context.WithTimeout(t.Context(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = client.Get(ctx, store.ShardID{Object: "o"})
	if err == nil {
		t.Fatal("Get against dead address succeeded")
	}
	if time.Since(start) > 2*time.Second {
		t.Error("cancelled retry loop kept running")
	}
}

func TestChaosScheduleDrivesRemoteNode(t *testing.T) {
	// The same Schedule that perturbs an in-process node drives a remote
	// client over real TCP when the served node is wrapped: a partition
	// window makes the remote unavailable and fails its reads with
	// ErrNodeDown, and the node recovers once the window closes.
	mem := store.NewMemNode("backing")
	id := store.ShardID{Object: "o", Row: 0}
	if err := mem.Put(t.Context(), id, []byte{7}); err != nil {
		t.Fatal(err)
	}
	chaos := faults.NewChaosNode(mem, faults.Schedule{
		Rules: []faults.Rule{{Kind: faults.FaultPartition, From: 0, To: 3}},
	})
	srv := NewServer(chaos)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := NewRemoteNode("r", addr.String(), WithTimeout(2*time.Second))
	t.Cleanup(func() { _ = client.Close() })

	if client.Available(t.Context()) { // tick 0
		t.Error("remote available inside partition window")
	}
	if _, err := client.Get(t.Context(), id); !errors.Is(err, store.ErrNodeDown) { // tick 1
		t.Errorf("Get inside partition = %v, want ErrNodeDown", err)
	}
	if _, err := client.Get(t.Context(), id); !errors.Is(err, store.ErrNodeDown) { // tick 2
		t.Errorf("Get inside partition = %v, want ErrNodeDown", err)
	}
	got, err := client.Get(t.Context(), id) // tick 3: window closed
	if err != nil || !bytes.Equal(got, []byte{7}) {
		t.Errorf("Get after partition = %v, %v; want recovery", got, err)
	}
	if stats := chaos.InjectionStats(); stats.PartitionDrops != 3 {
		t.Errorf("partition drops = %d, want 3", stats.PartitionDrops)
	}
}

func TestConnChaosWithRetries(t *testing.T) {
	// ConnChaos perturbs the wire itself; a client with a retry budget
	// still completes every operation.
	mem := store.NewMemNode("backing")
	srv := NewServer(mem, WithConnWrapper(faults.NewConnChaos(11, time.Millisecond, 0.2).Wrap))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := NewRemoteNode("r", addr.String(),
		WithTimeout(2*time.Second),
		WithRetryPolicy(store.RetryPolicy{MaxAttempts: 20, BaseDelay: time.Millisecond, Jitter: 0.5}))
	t.Cleanup(func() { _ = client.Close() })

	for i := 0; i < 10; i++ {
		id := store.ShardID{Object: "o", Row: i}
		if err := client.Put(t.Context(), id, []byte{byte(i)}); err != nil {
			t.Fatalf("Put %d under conn chaos: %v", i, err)
		}
		got, err := client.Get(t.Context(), id)
		if err != nil || !bytes.Equal(got, []byte{byte(i)}) {
			t.Fatalf("Get %d under conn chaos = %v, %v", i, got, err)
		}
	}
}
