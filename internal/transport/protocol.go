// Package transport exposes storage nodes over TCP so SEC archives can run
// against a real networked cluster: a Server serves any store.Node, and the
// RemoteNode client implements store.Node over the wire.
//
// The protocol is a simple length-prefixed binary framing:
//
//	frame  := u32(length) body
//	request body  := u8(op) u16(len(object)) object i32(row) payload
//	response body := u8(status) payload
//
// All integers are big-endian. Get responses carry the shard bytes; Stats
// responses carry five u64 counters; error responses carry a message.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/secarchive/sec/internal/store"
)

// Operation codes.
const (
	opPut byte = iota + 1
	opGet
	opDelete
	opPing
	opStats
	opResetStats
)

// Response status codes. statusCorrupt was added after statusError; new
// codes must keep appending so wire values stay stable across versions.
const (
	statusOK byte = iota
	statusNotFound
	statusNodeDown
	statusError
	statusCorrupt
)

// maxFrame bounds a frame body to keep a malformed peer from forcing huge
// allocations.
const maxFrame = 64 << 20

// errFrameTooLarge is returned when a peer announces an oversized frame.
var errFrameTooLarge = errors.New("transport: frame exceeds size limit")

type request struct {
	op      byte
	id      store.ShardID
	payload []byte
}

func encodeRequest(req request) ([]byte, error) {
	obj := []byte(req.id.Object)
	if len(obj) > 0xFFFF {
		return nil, fmt.Errorf("transport: object name of %d bytes exceeds limit", len(obj))
	}
	body := make([]byte, 0, 1+2+len(obj)+4+len(req.payload))
	body = append(body, req.op)
	body = binary.BigEndian.AppendUint16(body, uint16(len(obj)))
	body = append(body, obj...)
	body = binary.BigEndian.AppendUint32(body, uint32(int32(req.id.Row)))
	body = append(body, req.payload...)
	return body, nil
}

func decodeRequest(body []byte) (request, error) {
	if len(body) < 3 {
		return request{}, fmt.Errorf("transport: request body of %d bytes too short", len(body))
	}
	op := body[0]
	objLen := int(binary.BigEndian.Uint16(body[1:3]))
	rest := body[3:]
	if len(rest) < objLen+4 {
		return request{}, fmt.Errorf("transport: request truncated: want %d object bytes + row", objLen)
	}
	obj := string(rest[:objLen])
	row := int(int32(binary.BigEndian.Uint32(rest[objLen : objLen+4])))
	payload := rest[objLen+4:]
	return request{op: op, id: store.ShardID{Object: obj, Row: row}, payload: payload}, nil
}

func encodeResponse(status byte, payload []byte) []byte {
	body := make([]byte, 0, 1+len(payload))
	body = append(body, status)
	return append(body, payload...)
}

func decodeResponse(body []byte) (status byte, payload []byte, err error) {
	if len(body) < 1 {
		return 0, nil, errors.New("transport: empty response body")
	}
	return body[0], body[1:], nil
}

func encodeStats(s store.NodeStats) []byte {
	body := make([]byte, 0, 40)
	for _, v := range []uint64{s.Reads, s.Writes, s.Deletes, s.BytesRead, s.BytesWritten} {
		body = binary.BigEndian.AppendUint64(body, v)
	}
	return body
}

func decodeStats(body []byte) (store.NodeStats, error) {
	if len(body) != 40 {
		return store.NodeStats{}, fmt.Errorf("transport: stats payload of %d bytes, want 40", len(body))
	}
	return store.NodeStats{
		Reads:        binary.BigEndian.Uint64(body[0:8]),
		Writes:       binary.BigEndian.Uint64(body[8:16]),
		Deletes:      binary.BigEndian.Uint64(body[16:24]),
		BytesRead:    binary.BigEndian.Uint64(body[24:32]),
		BytesWritten: binary.BigEndian.Uint64(body[32:40]),
	}, nil
}

func writeFrame(w io.Writer, body []byte) error {
	if len(body) > maxFrame {
		return errFrameTooLarge
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(body)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrame {
		return nil, errFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// statusFor maps node errors onto wire status codes.
func statusFor(err error) byte {
	switch {
	case err == nil:
		return statusOK
	case errors.Is(err, store.ErrNotFound):
		return statusNotFound
	case errors.Is(err, store.ErrNodeDown):
		return statusNodeDown
	case errors.Is(err, store.ErrCorrupt):
		return statusCorrupt
	default:
		return statusError
	}
}

// errorFor maps wire status codes back onto node errors.
func errorFor(status byte, payload []byte, id store.ShardID) error {
	switch status {
	case statusOK:
		return nil
	case statusNotFound:
		return fmt.Errorf("remote %v: %w", id, store.ErrNotFound)
	case statusNodeDown:
		return fmt.Errorf("remote %v: %w", id, store.ErrNodeDown)
	case statusCorrupt:
		return fmt.Errorf("remote %v: %w: %s", id, store.ErrCorrupt, payload)
	default:
		return fmt.Errorf("remote %v: %s", id, payload)
	}
}
