// Package transport exposes storage nodes over TCP so SEC archives can run
// against a real networked cluster: a Server serves any store.Node, and the
// RemoteNode client implements store.Node over the wire.
//
// The protocol is a simple length-prefixed binary framing:
//
//	frame  := u32(length) body
//	request body  := u8(op) u16(len(object)) object i32(row) payload
//	response body := u8(status) payload
//
// All integers are big-endian. Get responses carry the shard bytes; Stats
// responses carry five u64 counters; error responses carry a message.
package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/secarchive/sec/internal/store"
)

// Operation codes. opGetBatch/opPutBatch were added after opResetStats and
// opDeleteBatch after opPutBatch; new codes must keep appending so wire
// values stay stable across versions.
const (
	opPut byte = iota + 1
	opGet
	opDelete
	opPing
	opStats
	opResetStats
	opGetBatch
	opPutBatch
	opDeleteBatch
)

// Response status codes. statusCorrupt was added after statusError, and
// statusPartial after statusCorrupt; new codes must keep appending so wire
// values stay stable across versions.
const (
	statusOK byte = iota
	statusNotFound
	statusNodeDown
	statusError
	statusCorrupt
	// statusPartial marks a continuation frame: the logical response
	// payload exceeds one frame (e.g. a get batch whose shards together
	// outgrow maxFrame), so the server splits it across several frames,
	// all but the last carrying statusPartial. The client concatenates
	// payloads until a terminal status arrives. Splitting - instead of
	// refusing the batch - matters for I/O accounting: the shards were
	// already read and counted on the node, so forcing a per-shard
	// fallback would read and count them all a second time.
	statusPartial
	// statusBusy was added after statusPartial (the archive-gateway ops):
	// the server refused admission (writer queue full); the request never
	// started and the client may retry after backoff.
	statusBusy
	// statusConflict was added after statusBusy: an optimistic
	// precondition failed (commit against a stale expected version,
	// create of an archive that already exists). Retrying without
	// re-reading current state will not succeed.
	statusConflict
)

// maxFrame bounds a frame body to keep a malformed peer from forcing huge
// allocations.
const maxFrame = 64 << 20

// errFrameTooLarge is returned when a peer announces an oversized frame.
var errFrameTooLarge = errors.New("transport: frame exceeds size limit")

// errEmptyResponse reports a response frame with no status byte.
var errEmptyResponse = errors.New("transport: empty response body")

type request struct {
	op      byte
	id      store.ShardID
	payload []byte
}

func encodeRequest(req request) ([]byte, error) {
	obj := []byte(req.id.Object)
	if len(obj) > 0xFFFF {
		return nil, fmt.Errorf("transport: object name of %d bytes exceeds limit", len(obj))
	}
	body := make([]byte, 0, 1+2+len(obj)+4+len(req.payload))
	body = append(body, req.op)
	body = binary.BigEndian.AppendUint16(body, uint16(len(obj)))
	body = append(body, obj...)
	body = binary.BigEndian.AppendUint32(body, uint32(int32(req.id.Row)))
	body = append(body, req.payload...)
	return body, nil
}

func decodeRequest(body []byte) (request, error) {
	if len(body) < 3 {
		return request{}, fmt.Errorf("transport: request body of %d bytes too short", len(body))
	}
	op := body[0]
	objLen := int(binary.BigEndian.Uint16(body[1:3]))
	rest := body[3:]
	if len(rest) < objLen+4 {
		return request{}, fmt.Errorf("transport: request truncated: want %d object bytes + row", objLen)
	}
	obj := string(rest[:objLen])
	row := int(int32(binary.BigEndian.Uint32(rest[objLen : objLen+4])))
	payload := rest[objLen+4:]
	return request{op: op, id: store.ShardID{Object: obj, Row: row}, payload: payload}, nil
}

func encodeResponse(status byte, payload []byte) []byte {
	body := make([]byte, 0, 1+len(payload))
	body = append(body, status)
	return append(body, payload...)
}

func decodeResponse(body []byte) (status byte, payload []byte, err error) {
	if len(body) < 1 {
		return 0, nil, errEmptyResponse
	}
	return body[0], body[1:], nil
}

func encodeStats(s store.NodeStats) []byte {
	body := make([]byte, 0, 40)
	for _, v := range []uint64{s.Reads, s.Writes, s.Deletes, s.BytesRead, s.BytesWritten} {
		body = binary.BigEndian.AppendUint64(body, v)
	}
	return body
}

func decodeStats(body []byte) (store.NodeStats, error) {
	if len(body) != 40 {
		return store.NodeStats{}, fmt.Errorf("transport: stats payload of %d bytes, want 40", len(body))
	}
	return store.NodeStats{
		Reads:        binary.BigEndian.Uint64(body[0:8]),
		Writes:       binary.BigEndian.Uint64(body[8:16]),
		Deletes:      binary.BigEndian.Uint64(body[16:24]),
		BytesRead:    binary.BigEndian.Uint64(body[24:32]),
		BytesWritten: binary.BigEndian.Uint64(body[32:40]),
	}, nil
}

// Batch framing. A batch request travels as an ordinary request frame
// whose op is opGetBatch/opPutBatch/opDeleteBatch (the per-request
// object/row fields are unused) and whose payload is:
//
//	get batch    := u32(count) count*( u16(len(object)) object i32(row) )
//	put batch    := u32(count) count*( u16(len(object)) object i32(row) u32(len(data)) data )
//	delete batch := u32(count) count*( u16(len(object)) object i32(row) )
//
// A batch response is a logical response frame: the outer status is
// statusOK whenever the batch itself was parsed and dispatched (statusError
// reports a malformed batch, and lets clients fall back to per-shard
// operations against servers that predate batching); a response payload
// larger than one frame is split across statusPartial continuation frames
// so already-performed (and already-counted) shard reads are never thrown
// away. Per-shard outcomes travel inside the payload:
//
//	batch response := u32(count) count*( u8(status) u32(len) bytes )
//
// where bytes is the shard contents for statusOK entries of a get batch
// and an error message otherwise. count always equals the request's count.

// maxBatchShards bounds the shard count of one batch frame: enough for any
// codeword a single node can hold a row of, small enough that a forged
// count cannot force a large allocation before the length checks bite.
const maxBatchShards = 4096

var (
	errBatchTooLarge  = errors.New("transport: batch exceeds shard-count limit")
	errBatchMalformed = errors.New("transport: malformed batch frame")
)

// appendShardID appends the u16-length-prefixed object and i32 row of one
// shard ID.
func appendShardID(body []byte, id store.ShardID) ([]byte, error) {
	if len(id.Object) > 0xFFFF {
		return nil, fmt.Errorf("transport: object name of %d bytes exceeds limit", len(id.Object))
	}
	body = binary.BigEndian.AppendUint16(body, uint16(len(id.Object)))
	body = append(body, id.Object...)
	body = binary.BigEndian.AppendUint32(body, uint32(int32(id.Row)))
	return body, nil
}

// readShardID consumes one shard ID from p, returning the remainder.
func readShardID(p []byte) (store.ShardID, []byte, error) {
	if len(p) < 2 {
		return store.ShardID{}, nil, errBatchMalformed
	}
	objLen := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if len(p) < objLen+4 {
		return store.ShardID{}, nil, errBatchMalformed
	}
	obj := string(p[:objLen])
	row := int(int32(binary.BigEndian.Uint32(p[objLen : objLen+4])))
	return store.ShardID{Object: obj, Row: row}, p[objLen+4:], nil
}

// readChunk consumes a u32-length-prefixed byte chunk from p.
func readChunk(p []byte) ([]byte, []byte, error) {
	if len(p) < 4 {
		return nil, nil, errBatchMalformed
	}
	n := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	if n < 0 || len(p) < n {
		return nil, nil, errBatchMalformed
	}
	return p[:n], p[n:], nil
}

// readBatchCount consumes and validates the leading shard count of a batch
// payload. minEntry is the smallest possible wire size of one entry, so a
// forged count can be rejected before any allocation sized by it.
func readBatchCount(p []byte, minEntry int) (int, []byte, error) {
	if len(p) < 4 {
		return 0, nil, errBatchMalformed
	}
	count := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	if count < 0 || count > maxBatchShards {
		return 0, nil, errBatchTooLarge
	}
	if len(p) < count*minEntry {
		return 0, nil, errBatchMalformed
	}
	return count, p, nil
}

func encodeGetBatch(ids []store.ShardID) ([]byte, error) {
	if len(ids) > maxBatchShards {
		return nil, errBatchTooLarge
	}
	body := binary.BigEndian.AppendUint32(make([]byte, 0, 4+len(ids)*16), uint32(len(ids)))
	var err error
	for _, id := range ids {
		if body, err = appendShardID(body, id); err != nil {
			return nil, err
		}
	}
	return body, nil
}

func decodeGetBatch(payload []byte) ([]store.ShardID, error) {
	count, p, err := readBatchCount(payload, 6)
	if err != nil {
		return nil, err
	}
	ids := make([]store.ShardID, count)
	for i := range ids {
		if ids[i], p, err = readShardID(p); err != nil {
			return nil, err
		}
	}
	if len(p) != 0 {
		return nil, errBatchMalformed
	}
	return ids, nil
}

// Delete batches carry exactly the shard-ID list a get batch does; the
// aliases keep call sites honest about which op they are framing.
func encodeDeleteBatch(ids []store.ShardID) ([]byte, error) { return encodeGetBatch(ids) }
func decodeDeleteBatch(payload []byte) ([]store.ShardID, error) {
	return decodeGetBatch(payload)
}

func encodePutBatch(ids []store.ShardID, data [][]byte) ([]byte, error) {
	if len(ids) > maxBatchShards {
		return nil, errBatchTooLarge
	}
	if len(data) != len(ids) {
		return nil, fmt.Errorf("%w: %d ids, %d payloads", errBatchMalformed, len(ids), len(data))
	}
	size := 4
	for i, id := range ids {
		size += 2 + len(id.Object) + 4 + 4 + len(data[i])
	}
	body := binary.BigEndian.AppendUint32(make([]byte, 0, size), uint32(len(ids)))
	var err error
	for i, id := range ids {
		if body, err = appendShardID(body, id); err != nil {
			return nil, err
		}
		body = binary.BigEndian.AppendUint32(body, uint32(len(data[i])))
		body = append(body, data[i]...)
	}
	return body, nil
}

func decodePutBatch(payload []byte) ([]store.ShardID, [][]byte, error) {
	count, p, err := readBatchCount(payload, 10)
	if err != nil {
		return nil, nil, err
	}
	ids := make([]store.ShardID, count)
	data := make([][]byte, count)
	for i := range ids {
		if ids[i], p, err = readShardID(p); err != nil {
			return nil, nil, err
		}
		if data[i], p, err = readChunk(p); err != nil {
			return nil, nil, err
		}
	}
	if len(p) != 0 {
		return nil, nil, errBatchMalformed
	}
	return ids, data, nil
}

// encodeBatchResults renders per-shard outcomes: shard data for successful
// gets, a wire error (with ShardError provenance when present) otherwise.
// Put batches pass nil Data throughout.
func encodeBatchResults(results []store.ShardResult) []byte {
	size := 4
	for _, res := range results {
		size += 1 + 4
		if res.Err == nil {
			size += len(res.Data)
		}
	}
	body := binary.BigEndian.AppendUint32(make([]byte, 0, size), uint32(len(results)))
	for _, res := range results {
		body = append(body, statusFor(res.Err))
		if res.Err == nil {
			body = binary.BigEndian.AppendUint32(body, uint32(len(res.Data)))
			body = append(body, res.Data...)
			continue
		}
		msg := encodeWireError(res.Err)
		body = binary.BigEndian.AppendUint32(body, uint32(len(msg)))
		body = append(body, msg...)
	}
	return body
}

// decodeBatchResults parses a batch response into per-shard results
// aligned with ids; the response count must match len(ids) exactly, so a
// truncated or padded response is rejected rather than misattributed.
// node and op provide the client-side provenance for error entries whose
// payload carries none.
func decodeBatchResults(payload []byte, ids []store.ShardID, node, op string) ([]store.ShardResult, error) {
	count, p, err := readBatchCount(payload, 5)
	if err != nil {
		return nil, err
	}
	if count != len(ids) {
		return nil, fmt.Errorf("%w: %d results for %d shards", errBatchMalformed, count, len(ids))
	}
	results := make([]store.ShardResult, count)
	for i := range results {
		if len(p) < 1 {
			return nil, errBatchMalformed
		}
		status := p[0]
		var chunk []byte
		if chunk, p, err = readChunk(p[1:]); err != nil {
			return nil, err
		}
		if status == statusOK {
			// Copy out of the frame buffer so callers own the result.
			results[i] = store.ShardResult{Data: append([]byte(nil), chunk...)}
			continue
		}
		results[i] = store.ShardResult{Err: errorFor(status, chunk, node, op, ids[i])}
	}
	if len(p) != 0 {
		return nil, errBatchMalformed
	}
	return results, nil
}

func writeFrame(w io.Writer, body []byte) error {
	if len(body) > maxFrame {
		return errFrameTooLarge
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(body)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	_, err := w.Write(body)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n > maxFrame {
		return nil, errFrameTooLarge
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}

// statusFor maps node errors onto wire status codes.
func statusFor(err error) byte {
	switch {
	case err == nil:
		return statusOK
	case errors.Is(err, store.ErrNotFound):
		return statusNotFound
	case errors.Is(err, store.ErrNodeDown):
		return statusNodeDown
	case errors.Is(err, store.ErrCorrupt):
		return statusCorrupt
	case errors.Is(err, store.ErrBusy):
		return statusBusy
	case errors.Is(err, store.ErrConflict):
		return statusConflict
	default:
		return statusError
	}
}

// Error provenance framing. An error payload (the body of a non-OK
// response, or the bytes of a failed batch entry) is either plain message
// text (legacy peers) or a structured record carrying the server-side
// *store.ShardError provenance, marked by a magic prefix no log-style
// message starts with:
//
//	error payload := "SE1\x00" u8(len(node)) node u8(len(op)) op
//	                 u16(len(object)) object i32(row) message
//
// The client decodes the record back into a ShardError, so errors.As names
// the node and shard that actually failed even across the wire; payloads
// without the magic fall back to client-side provenance.
var wireErrMagic = []byte("SE1\x00")

// encodeWireError renders an error for the wire, embedding ShardError
// provenance when the error carries it.
func encodeWireError(err error) []byte {
	if err == nil {
		return nil
	}
	msg := err.Error()
	var se *store.ShardError
	if !errors.As(err, &se) || len(se.Node) > 0xFF || len(se.Op) > 0xFF || len(se.Shard.Object) > 0xFFFF {
		return []byte(msg)
	}
	if cause := se.Err; cause != nil {
		// The provenance fields travel structurally; the message only needs
		// the cause chain below the ShardError.
		msg = cause.Error()
	}
	body := make([]byte, 0, len(wireErrMagic)+1+len(se.Node)+1+len(se.Op)+2+len(se.Shard.Object)+4+len(msg))
	body = append(body, wireErrMagic...)
	body = append(body, byte(len(se.Node)))
	body = append(body, se.Node...)
	body = append(body, byte(len(se.Op)))
	body = append(body, se.Op...)
	body = binary.BigEndian.AppendUint16(body, uint16(len(se.Shard.Object)))
	body = append(body, se.Shard.Object...)
	body = binary.BigEndian.AppendUint32(body, uint32(int32(se.Shard.Row)))
	body = append(body, msg...)
	return body
}

// decodeWireError splits an error payload into its provenance (ok reports
// whether the payload carried one) and message text.
func decodeWireError(payload []byte) (node, op string, id store.ShardID, msg string, ok bool) {
	p, found := bytes.CutPrefix(payload, wireErrMagic)
	if !found {
		return "", "", store.ShardID{}, string(payload), false
	}
	take := func(n int) ([]byte, bool) {
		if len(p) < n {
			return nil, false
		}
		chunk := p[:n]
		p = p[n:]
		return chunk, true
	}
	lenByte, ok1 := take(1)
	if !ok1 {
		return "", "", store.ShardID{}, string(payload), false
	}
	nodeRaw, ok1 := take(int(lenByte[0]))
	if !ok1 {
		return "", "", store.ShardID{}, string(payload), false
	}
	lenByte, ok1 = take(1)
	if !ok1 {
		return "", "", store.ShardID{}, string(payload), false
	}
	opRaw, ok1 := take(int(lenByte[0]))
	if !ok1 {
		return "", "", store.ShardID{}, string(payload), false
	}
	lenWord, ok1 := take(2)
	if !ok1 {
		return "", "", store.ShardID{}, string(payload), false
	}
	objRaw, ok1 := take(int(binary.BigEndian.Uint16(lenWord)))
	if !ok1 {
		return "", "", store.ShardID{}, string(payload), false
	}
	rowRaw, ok1 := take(4)
	if !ok1 {
		return "", "", store.ShardID{}, string(payload), false
	}
	id = store.ShardID{Object: string(objRaw), Row: int(int32(binary.BigEndian.Uint32(rowRaw)))}
	return string(nodeRaw), string(opRaw), id, string(p), true
}

// errorFor maps a wire status and error payload back onto a *store.
// ShardError wrapping the matching sentinel. Provenance embedded in the
// payload wins; otherwise the client-side node ID, operation, and shard
// requested fill in.
func errorFor(status byte, payload []byte, node, op string, id store.ShardID) error {
	if status == statusOK {
		return nil
	}
	if wnode, wop, wid, msg, ok := decodeWireError(payload); ok {
		node, op, id = wnode, wop, wid
		payload = []byte(msg)
	}
	var cause error
	switch status {
	case statusNotFound:
		cause = store.ErrNotFound
	case statusNodeDown:
		cause = store.ErrNodeDown
	case statusCorrupt:
		cause = store.ErrCorrupt
	case statusBusy:
		cause = store.ErrBusy
	case statusConflict:
		cause = store.ErrConflict
	}
	switch {
	case cause == nil:
		cause = fmt.Errorf("remote: %s", payload)
	case len(payload) > 0 && string(payload) != cause.Error():
		cause = fmt.Errorf("%w: remote: %s", cause, payload)
	}
	return &store.ShardError{Node: node, Shard: id, Op: op, Err: cause}
}
