package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/secarchive/sec/internal/core"
	"github.com/secarchive/sec/internal/store"
)

// stubArchiveBackend records calls and returns canned results, so the wire
// layer can be tested without a real gateway behind it.
type stubArchiveBackend struct {
	mu     sync.Mutex
	calls  []string
	err    error // injected failure for every op
	data   []byte
	expect int // last commit precondition seen
}

func (b *stubArchiveBackend) record(format string, args ...any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.calls = append(b.calls, fmt.Sprintf(format, args...))
}

func (b *stubArchiveBackend) Create(_ context.Context, name string, spec ArchiveSpec) (ArchiveInfo, error) {
	b.record("create %s (%d,%d)", name, spec.N, spec.K)
	if b.err != nil {
		return ArchiveInfo{}, b.err
	}
	return ArchiveInfo{Manifest: spec.Manifest(name), Capacity: spec.K * spec.BlockSize}, nil
}

func (b *stubArchiveBackend) Commit(_ context.Context, name string, expect int, object []byte) (core.CommitInfo, error) {
	b.record("commit %s expect=%d len=%d", name, expect, len(object))
	b.mu.Lock()
	b.expect = expect
	b.data = append([]byte(nil), object...)
	b.mu.Unlock()
	if b.err != nil {
		return core.CommitInfo{}, b.err
	}
	return core.CommitInfo{Version: 7, StoredDelta: true, Gamma: 3, ShardWrites: 12}, nil
}

func (b *stubArchiveBackend) Retrieve(_ context.Context, name string, version int) (ArchiveVersion, error) {
	b.record("retrieve %s v%d", name, version)
	if b.err != nil {
		return ArchiveVersion{}, b.err
	}
	return ArchiveVersion{
		Version: version,
		Data:    b.data,
		Stats:   core.RetrievalStats{NodeReads: 10, SparseReads: 1},
	}, nil
}

func (b *stubArchiveBackend) RetrieveAll(_ context.Context, name string, version int) ([][]byte, core.RetrievalStats, error) {
	b.record("retrieve-all %s v%d", name, version)
	if b.err != nil {
		return nil, core.RetrievalStats{}, b.err
	}
	return [][]byte{{1}, nil, b.data}, core.RetrievalStats{NodeReads: 22}, nil
}

func (b *stubArchiveBackend) Log(_ context.Context, name string) ([]ArchiveLogEntry, error) {
	b.record("log %s", name)
	if b.err != nil {
		return nil, b.err
	}
	return []ArchiveLogEntry{
		{Version: 1, Full: true, Length: 9, ChainDepth: 1, PlannedReads: 12},
		{Version: 2, Delta: true, Gamma: 2, Length: 9, Support: []int{0, 3}, ChainDepth: 2, PlannedReads: 14},
	}, nil
}

func (b *stubArchiveBackend) Info(_ context.Context, name string) (ArchiveInfo, error) {
	b.record("info %s", name)
	if b.err != nil {
		return ArchiveInfo{}, b.err
	}
	return ArchiveInfo{
		Manifest: core.Manifest{Name: name, N: 12, K: 10},
		Versions: 4,
		Capacity: 40,
		Cache:    &core.CacheStats{Hits: 3, Budget: 1 << 20},
		Nodes:    []ArchiveNodeStatus{{Health: store.NodeHealth{Node: 0, ID: "n0"}, Up: true}},
	}, nil
}

func (b *stubArchiveBackend) Compact(_ context.Context, name string, maxChain int) (CompactReport, error) {
	b.record("compact %s max=%d", name, maxChain)
	if b.err != nil {
		return CompactReport{}, b.err
	}
	return CompactReport{Info: core.CompactionInfo{MaxChainLength: maxChain, Rebased: []int{2, 3}}, Deleted: 5}, nil
}

func (b *stubArchiveBackend) Scrub(_ context.Context, name string, repair bool) (core.ScrubReport, error) {
	b.record("scrub %s repair=%v", name, repair)
	if b.err != nil {
		return core.ScrubReport{}, b.err
	}
	return core.ScrubReport{ShardsChecked: 24}, nil
}

func (b *stubArchiveBackend) Repair(_ context.Context, name string, node int) (core.RepairReport, error) {
	b.record("repair %s node=%d", name, node)
	if b.err != nil {
		return core.RepairReport{}, b.err
	}
	return core.RepairReport{ShardsChecked: 2}, nil
}

// startArchiveServer serves a stub backend (with no storage node) over
// loopback TCP and returns the stub plus a connected archive client.
func startArchiveServer(t *testing.T) (*stubArchiveBackend, *ArchiveClient) {
	t.Helper()
	stub := &stubArchiveBackend{}
	srv := NewServer(nil, WithArchiveBackend(stub))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := NewArchiveClient("gw-test", addr.String(), WithTimeout(2*time.Second))
	t.Cleanup(func() { _ = client.Close() })
	return stub, client
}

func TestArchCommitCodecRoundTrip(t *testing.T) {
	for _, tt := range []struct {
		expect int
		object []byte
	}{
		{-1, []byte("object bytes")},
		{0, nil},
		{41, []byte{0xFF}},
	} {
		body, err := encodeArchCommit(tt.expect, tt.object)
		if err != nil {
			t.Fatalf("encode expect=%d: %v", tt.expect, err)
		}
		expect, object, err := decodeArchCommit(body)
		if err != nil {
			t.Fatalf("decode expect=%d: %v", tt.expect, err)
		}
		if expect != tt.expect || !bytes.Equal(object, tt.object) {
			t.Errorf("round trip = (%d, %v), want (%d, %v)", expect, object, tt.expect, tt.object)
		}
	}
	if _, _, err := decodeArchCommit([]byte{0, 0}); !errors.Is(err, errArchMalformed) {
		t.Errorf("truncated commit: err = %v, want errArchMalformed", err)
	}
	if _, err := encodeArchCommit(-2, nil); err == nil {
		t.Error("expect=-2 encoded without error")
	}
}

func TestArchCommitOversizedRejectedClientSide(t *testing.T) {
	huge := make([]byte, maxFrame-63)
	if _, err := encodeArchCommit(-1, huge); !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("oversized commit: err = %v, want errFrameTooLarge", err)
	}
	// The typed rejection must surface through the client path too, before
	// any bytes hit the wire.
	_, client := startArchiveServer(t)
	if _, err := client.Commit(t.Context(), "a", -1, huge); !errors.Is(err, errFrameTooLarge) {
		t.Fatalf("client oversized commit: err = %v, want errFrameTooLarge", err)
	}
}

func TestArchVersionCodecRoundTrip(t *testing.T) {
	want := ArchiveVersion{
		Version: 3,
		Data:    []byte("the decoded object"),
		Stats:   core.RetrievalStats{NodeReads: 14, SparseReads: 2, CacheHits: 1},
	}
	body, err := encodeArchVersion(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeArchVersion(body)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != want.Version || !bytes.Equal(got.Data, want.Data) ||
		got.Stats.NodeReads != want.Stats.NodeReads || got.Stats.CacheHits != want.Stats.CacheHits {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
	if _, err := decodeArchVersion([]byte{0, 0, 0}); !errors.Is(err, errArchMalformed) {
		t.Errorf("truncated version: err = %v, want errArchMalformed", err)
	}
}

func TestArchVersionsCodecRoundTrip(t *testing.T) {
	versions := [][]byte{[]byte("v1"), nil, []byte("version three")}
	stats := core.RetrievalStats{NodeReads: 30, FullReads: 1}
	body, err := encodeArchVersions(versions, stats)
	if err != nil {
		t.Fatal(err)
	}
	got, gotStats, err := decodeArchVersions(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(versions) {
		t.Fatalf("round trip count %d, want %d", len(got), len(versions))
	}
	for i := range versions {
		if !bytes.Equal(got[i], versions[i]) {
			t.Errorf("version %d: %v, want %v", i+1, got[i], versions[i])
		}
	}
	if gotStats.NodeReads != stats.NodeReads {
		t.Errorf("stats = %+v, want %+v", gotStats, stats)
	}
	// Trailing garbage after the last chunk must be rejected, not ignored.
	if _, _, err := decodeArchVersions(append(body, 0xEE)); !errors.Is(err, errArchMalformed) {
		t.Errorf("trailing bytes: err = %v, want errArchMalformed", err)
	}
}

func TestArchiveClientAllOps(t *testing.T) {
	stub, client := startArchiveServer(t)
	ctx := t.Context()

	info, err := client.Create(ctx, "logs", ArchiveSpec{N: 12, K: 10, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if info.Manifest.Name != "logs" || info.Capacity != 40 {
		t.Errorf("Create info = %+v", info)
	}

	object := []byte("payload for commit")
	ci, err := client.Commit(ctx, "logs", 6, object)
	if err != nil {
		t.Fatal(err)
	}
	if ci.Version != 7 || !ci.StoredDelta || ci.Gamma != 3 {
		t.Errorf("CommitInfo = %+v", ci)
	}
	if stub.expect != 6 || !bytes.Equal(stub.data, object) {
		t.Errorf("server saw expect=%d data=%q", stub.expect, stub.data)
	}

	v, err := client.Retrieve(ctx, "logs", 7)
	if err != nil {
		t.Fatal(err)
	}
	if v.Version != 7 || !bytes.Equal(v.Data, object) || v.Stats.NodeReads != 10 {
		t.Errorf("Retrieve = %+v", v)
	}

	all, stats, err := client.RetrieveAll(ctx, "logs", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || !bytes.Equal(all[2], object) || stats.NodeReads != 22 {
		t.Errorf("RetrieveAll = %d versions, stats %+v", len(all), stats)
	}

	entries, err := client.Log(ctx, "logs")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[1].Gamma != 2 || entries[1].PlannedReads != 14 {
		t.Errorf("Log = %+v", entries)
	}

	ai, err := client.Info(ctx, "logs")
	if err != nil {
		t.Fatal(err)
	}
	if ai.Versions != 4 || ai.Cache == nil || ai.Cache.Hits != 3 || len(ai.Nodes) != 1 || !ai.Nodes[0].Up {
		t.Errorf("Info = %+v", ai)
	}

	cr, err := client.Compact(ctx, "logs", 5)
	if err != nil {
		t.Fatal(err)
	}
	if cr.Info.MaxChainLength != 5 || cr.Deleted != 5 {
		t.Errorf("Compact = %+v", cr)
	}

	sr, err := client.Scrub(ctx, "logs", true)
	if err != nil {
		t.Fatal(err)
	}
	if sr.ShardsChecked != 24 {
		t.Errorf("Scrub = %+v", sr)
	}

	rr, err := client.Repair(ctx, "logs", 3)
	if err != nil {
		t.Fatal(err)
	}
	if rr.ShardsChecked != 2 {
		t.Errorf("Repair = %+v", rr)
	}

	want := []string{
		"create logs (12,10)",
		"commit logs expect=6 len=18",
		"retrieve logs v7",
		"retrieve-all logs v0",
		"log logs",
		"info logs",
		"compact logs max=5",
		"scrub logs repair=true",
		"repair logs node=3",
	}
	stub.mu.Lock()
	defer stub.mu.Unlock()
	if len(stub.calls) != len(want) {
		t.Fatalf("server saw %d calls: %v", len(stub.calls), stub.calls)
	}
	for i := range want {
		if stub.calls[i] != want[i] {
			t.Errorf("call %d = %q, want %q", i, stub.calls[i], want[i])
		}
	}
}

func TestArchiveServerRequestStats(t *testing.T) {
	stub := &stubArchiveBackend{}
	srv := NewServer(nil, WithArchiveBackend(stub))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := NewArchiveClient("gw", addr.String(), WithTimeout(2*time.Second))
	t.Cleanup(func() { _ = client.Close() })

	if _, err := client.Commit(t.Context(), "a", -1, []byte("12345")); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Retrieve(t.Context(), "a", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Log(t.Context(), "a"); err != nil {
		t.Fatal(err)
	}
	got := srv.RequestStats()
	if got.ArchCommits != 1 || got.ArchGets != 1 || got.ArchLogs != 1 {
		t.Errorf("RequestStats = %+v", got)
	}
	if got.BytesWritten != 5 {
		t.Errorf("BytesWritten = %d, want 5 (the committed object)", got.BytesWritten)
	}
	if got.BytesRead != 5 {
		t.Errorf("BytesRead = %d, want 5 (the retrieved object)", got.BytesRead)
	}
}

// TestArchiveErrorTaxonomyOverWire proves busy/conflict/not-found cross the
// wire as their store sentinels wrapped in ShardError provenance.
func TestArchiveErrorTaxonomyOverWire(t *testing.T) {
	stub, client := startArchiveServer(t)
	for _, tt := range []struct {
		name     string
		inject   error
		sentinel error
	}{
		{"busy", fmt.Errorf("gateway: writer queue full: %w", store.ErrBusy), store.ErrBusy},
		{"conflict", fmt.Errorf("gateway: expected 3 versions: %w", store.ErrConflict), store.ErrConflict},
		{"not-found", fmt.Errorf("gateway: unknown archive: %w", store.ErrNotFound), store.ErrNotFound},
	} {
		t.Run(tt.name, func(t *testing.T) {
			stub.err = tt.inject
			defer func() { stub.err = nil }()
			_, err := client.Commit(t.Context(), "a", -1, []byte("x"))
			if !errors.Is(err, tt.sentinel) {
				t.Fatalf("err = %v, want %v", err, tt.sentinel)
			}
			var se *store.ShardError
			if !errors.As(err, &se) {
				t.Fatalf("err = %v, want ShardError provenance", err)
			}
			if se.Node != "gateway" || se.Shard.Object != "a" {
				t.Errorf("provenance = node %q shard %v", se.Node, se.Shard)
			}
		})
	}
}

// TestArchiveShardErrorProvenancePreserved proves a backend error that
// already names a culprit node crosses the wire un-reattributed.
func TestArchiveShardErrorProvenancePreserved(t *testing.T) {
	stub, client := startArchiveServer(t)
	stub.err = &store.ShardError{
		Node:  "node-4",
		Shard: store.ShardID{Object: "a/v2", Row: 1},
		Op:    "get",
		Err:   store.ErrNodeDown,
	}
	_, err := client.Retrieve(t.Context(), "a", 2)
	if !errors.Is(err, store.ErrNodeDown) {
		t.Fatalf("err = %v, want ErrNodeDown", err)
	}
	var se *store.ShardError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want ShardError", err)
	}
	if se.Node != "node-4" || se.Shard.Object != "a/v2" {
		t.Errorf("provenance rewritten: %+v", se)
	}
}

// TestArchiveRetrieveStreamsAcrossFrames forces multi-frame statusPartial
// continuation and checks the reassembled object is byte-identical.
func TestArchiveRetrieveStreamsAcrossFrames(t *testing.T) {
	defer func(prev int) { maxResponseChunk = prev }(maxResponseChunk)
	maxResponseChunk = 64

	stub, client := startArchiveServer(t)
	object := make([]byte, 10_000)
	for i := range object {
		object[i] = byte(i * 13)
	}
	stub.data = object
	v, err := client.Retrieve(t.Context(), "big", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v.Data, object) {
		t.Error("streamed retrieve is not byte-identical")
	}
	all, _, err := client.RetrieveAll(t.Context(), "big", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || !bytes.Equal(all[2], object) {
		t.Error("streamed retrieve-all is not byte-identical")
	}
}

// TestArchiveOpsAgainstLegacyPeer dials a plain storage node (which
// predates the archive ops) and checks every archive call fails with the
// typed ErrNotServed, not a silent mis-decode.
func TestArchiveOpsAgainstLegacyPeer(t *testing.T) {
	srv := NewServer(store.NewMemNode("plain"))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := NewArchiveClient("gw", addr.String(), WithTimeout(2*time.Second))
	t.Cleanup(func() { _ = client.Close() })

	if _, err := client.Retrieve(t.Context(), "a", 1); !errors.Is(err, ErrNotServed) {
		t.Errorf("Retrieve on legacy peer: err = %v, want ErrNotServed", err)
	}
	if _, err := client.Commit(t.Context(), "a", -1, []byte("x")); !errors.Is(err, ErrNotServed) {
		t.Errorf("Commit on legacy peer: err = %v, want ErrNotServed", err)
	}
	if _, err := client.Info(t.Context(), "a"); !errors.Is(err, ErrNotServed) {
		t.Errorf("Info on legacy peer: err = %v, want ErrNotServed", err)
	}
}

// TestMarkNotServed pins the two rejection messages that mean "dial a
// gateway instead": a true legacy peer's unknown-op answer and a current
// storage node's archive-ops-not-served answer.
func TestMarkNotServed(t *testing.T) {
	for _, msg := range []string{
		"transport: unknown op 12",
		"transport: archive ops not served",
	} {
		err := error(&store.ShardError{Node: "n", Op: "arch-get", Err: errors.New(msg)})
		markNotServed(err)
		if !errors.Is(err, ErrNotServed) {
			t.Errorf("%q not marked ErrNotServed", msg)
		}
	}
	err := error(&store.ShardError{Node: "n", Op: "arch-get", Err: store.ErrNodeDown})
	markNotServed(err)
	if errors.Is(err, ErrNotServed) {
		t.Error("unrelated failure marked ErrNotServed")
	}
}

// TestGatewayServerRejectsNodeOps checks the inverse: a gateway-only
// server (nil node) answers shard-level ops with a clean error and still
// serves pings.
func TestGatewayServerRejectsNodeOps(t *testing.T) {
	stub := &stubArchiveBackend{}
	srv := NewServer(nil, WithArchiveBackend(stub))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	node := NewRemoteNode("as-node", addr.String(), WithTimeout(2*time.Second))
	t.Cleanup(func() { _ = node.Close() })

	if !node.Available(t.Context()) {
		t.Error("gateway server does not answer pings")
	}
	if err := node.Put(t.Context(), store.ShardID{Object: "o"}, []byte{1}); err == nil {
		t.Error("Put on a gateway-only server succeeded")
	}
}

// TestArchiveOpWithoutName checks name validation happens before dispatch.
func TestArchiveOpWithoutName(t *testing.T) {
	stub, client := startArchiveServer(t)
	if _, err := client.Retrieve(t.Context(), "", 1); err == nil {
		t.Fatal("empty archive name accepted")
	}
	stub.mu.Lock()
	defer stub.mu.Unlock()
	if len(stub.calls) != 0 {
		t.Errorf("backend dispatched despite empty name: %v", stub.calls)
	}
}
