package transport

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/secarchive/sec/internal/store"
)

func testIDs(object string, rows ...int) []store.ShardID {
	ids := make([]store.ShardID, len(rows))
	for i, r := range rows {
		ids[i] = store.ShardID{Object: object, Row: r}
	}
	return ids
}

func TestRemoteBatchRoundTrip(t *testing.T) {
	mem, client := startServer(t)
	ids := testIDs("arch/v1", 0, 1, 2, 3)
	data := [][]byte{{1}, {2, 2}, {3, 3, 3}, {}}
	for i, err := range client.PutBatch(t.Context(), ids, data) {
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i, res := range client.GetBatch(t.Context(), ids) {
		if res.Err != nil {
			t.Fatalf("get %d: %v", i, res.Err)
		}
		if !bytes.Equal(res.Data, data[i]) {
			t.Errorf("shard %d = %v, want %v", i, res.Data, data[i])
		}
	}
	// The backing node counted every shard individually.
	if got := mem.Stats(); got.Reads != 4 || got.Writes != 4 {
		t.Errorf("backing stats = %+v, want 4 reads and 4 writes", got)
	}
}

func TestRemoteBatchIsOneRPC(t *testing.T) {
	mem := store.NewMemNode("backing")
	srv := NewServer(mem)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := NewRemoteNode("remote", addr.String(), WithTimeout(2*time.Second))
	t.Cleanup(func() { _ = client.Close() })

	ids := testIDs("o", 0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	data := make([][]byte, len(ids))
	for i := range data {
		data[i] = []byte{byte(i)}
	}
	client.PutBatch(t.Context(), ids, data)
	client.GetBatch(t.Context(), ids)
	stats := srv.RequestStats()
	if stats.PutBatches != 1 || stats.PutBatchShards != 10 {
		t.Errorf("put batches = %d/%d shards, want 1/10", stats.PutBatches, stats.PutBatchShards)
	}
	if stats.GetBatches != 1 || stats.GetBatchShards != 10 {
		t.Errorf("get batches = %d/%d shards, want 1/10", stats.GetBatches, stats.GetBatchShards)
	}
	if stats.Gets != 0 || stats.Puts != 0 {
		t.Errorf("per-shard RPCs leaked: %d gets, %d puts", stats.Gets, stats.Puts)
	}
}

func TestRemoteBatchPerShardStatuses(t *testing.T) {
	mem, client := startServer(t)
	present := store.ShardID{Object: "o", Row: 0}
	if err := mem.Put(t.Context(), present, []byte{7}); err != nil {
		t.Fatal(err)
	}
	results := client.GetBatch(t.Context(), testIDs("o", 0, 1, 2))
	if results[0].Err != nil || !bytes.Equal(results[0].Data, []byte{7}) {
		t.Errorf("present shard = %v/%v", results[0].Data, results[0].Err)
	}
	for i := 1; i < 3; i++ {
		if !errors.Is(results[i].Err, store.ErrNotFound) {
			t.Errorf("missing shard %d err = %v, want ErrNotFound", i, results[i].Err)
		}
	}
}

func TestRemoteBatchCorruptStatusPropagates(t *testing.T) {
	// A disk-backed server with one rotten shard file: the batch must carry
	// statusCorrupt for that row only, and the client must surface
	// store.ErrCorrupt for it while the siblings decode fine.
	disk, err := store.NewDiskNode("backing", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(disk)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := NewRemoteNode("remote", addr.String(), WithTimeout(2*time.Second))
	t.Cleanup(func() { _ = client.Close() })

	ids := testIDs("o", 0, 1, 2)
	for i, err := range client.PutBatch(t.Context(), ids, [][]byte{{1}, {2}, {3}}) {
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	corruptOneShardFile(t, disk)
	results := client.GetBatch(t.Context(), ids)
	var corrupt, healthy int
	for i, res := range results {
		switch {
		case res.Err == nil:
			healthy++
		case errors.Is(res.Err, store.ErrCorrupt):
			corrupt++
		default:
			t.Errorf("shard %d: unexpected error %v", i, res.Err)
		}
	}
	if corrupt != 1 || healthy != 2 {
		t.Errorf("corrupt=%d healthy=%d, want 1 and 2", corrupt, healthy)
	}
}

// flakyNode serves a fixed number of gets and then crashes, modelling a
// node dying mid-batch: later shards in the same batch frame must come
// back as ErrNodeDown while the earlier ones keep their data.
type flakyNode struct {
	*store.MemNode
	remaining atomic.Int64
}

func (f *flakyNode) Get(ctx context.Context, id store.ShardID) ([]byte, error) {
	if f.remaining.Add(-1) < 0 {
		return nil, fmt.Errorf("get %v: %w", id, store.ErrNodeDown)
	}
	return f.MemNode.Get(ctx, id)
}

// GetBatch routes through the crashing Get (instead of the embedded
// MemNode's native batch) so the crash hits mid-batch.
func (f *flakyNode) GetBatch(ctx context.Context, ids []store.ShardID) []store.ShardResult {
	results := make([]store.ShardResult, len(ids))
	for i, id := range ids {
		data, err := f.Get(ctx, id)
		results[i] = store.ShardResult{Data: data, Err: err}
	}
	return results
}

func TestRemoteBatchMidBatchCrash(t *testing.T) {
	flaky := &flakyNode{MemNode: store.NewMemNode("flaky")}
	ids := testIDs("o", 0, 1, 2, 3)
	for i, id := range ids {
		if err := flaky.MemNode.Put(t.Context(), id, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	flaky.remaining.Store(2) // crash after two shards
	srv := NewServer(flaky)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := NewRemoteNode("remote", addr.String(), WithTimeout(2*time.Second))
	t.Cleanup(func() { _ = client.Close() })

	results := client.GetBatch(t.Context(), ids)
	for i := 0; i < 2; i++ {
		if results[i].Err != nil || !bytes.Equal(results[i].Data, []byte{byte(i)}) {
			t.Errorf("pre-crash shard %d = %v/%v", i, results[i].Data, results[i].Err)
		}
	}
	for i := 2; i < 4; i++ {
		if !errors.Is(results[i].Err, store.ErrNodeDown) {
			t.Errorf("post-crash shard %d err = %v, want ErrNodeDown", i, results[i].Err)
		}
	}
}

func TestRemoteBatchServerGone(t *testing.T) {
	mem := store.NewMemNode("backing")
	srv := NewServer(mem)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := NewRemoteNode("remote", addr.String(), WithTimeout(500*time.Millisecond))
	t.Cleanup(func() { _ = client.Close() })
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	for i, res := range client.GetBatch(t.Context(), testIDs("o", 0, 1)) {
		if !errors.Is(res.Err, store.ErrNodeDown) {
			t.Errorf("shard %d err = %v, want ErrNodeDown", i, res.Err)
		}
	}
	for i, err := range client.PutBatch(t.Context(), testIDs("o", 0, 1), [][]byte{{1}, {2}}) {
		if !errors.Is(err, store.ErrNodeDown) {
			t.Errorf("put %d err = %v, want ErrNodeDown", i, err)
		}
	}
}

// legacyServer answers per-shard operations from a node but reports
// statusError for batch ops, like a server that predates batching.
func legacyServer(t *testing.T, node store.Node) net.Addr {
	t.Helper()
	inner := NewServer(node)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					body, err := readFrame(conn)
					if err != nil {
						return
					}
					var status byte
					var payload []byte
					if req, err := decodeRequest(body); err == nil && (req.op == opGetBatch || req.op == opPutBatch || req.op == opDeleteBatch) {
						status, payload = statusError, []byte(fmt.Sprintf("transport: unknown op %d", req.op))
					} else {
						status, payload = inner.handle(context.Background(), body)
					}
					if err := writeFrame(conn, encodeResponse(status, payload)); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln.Addr()
}

func TestRemoteBatchFallsBackOnLegacyServer(t *testing.T) {
	mem := store.NewMemNode("legacy")
	addr := legacyServer(t, mem)
	client := NewRemoteNode("remote", addr.String(), WithTimeout(2*time.Second))
	t.Cleanup(func() { _ = client.Close() })

	ids := testIDs("o", 0, 1, 2)
	data := [][]byte{{1}, {2}, {3}}
	for i, err := range client.PutBatch(t.Context(), ids, data) {
		if err != nil {
			t.Fatalf("put %d against legacy server: %v", i, err)
		}
	}
	for i, res := range client.GetBatch(t.Context(), ids) {
		if res.Err != nil || !bytes.Equal(res.Data, data[i]) {
			t.Errorf("legacy get %d = %v/%v, want %v", i, res.Data, res.Err, data[i])
		}
	}
	if got := mem.Stats(); got.Reads != 3 || got.Writes != 3 {
		t.Errorf("legacy backing stats = %+v, want 3 reads and 3 writes", got)
	}
}

// blockingNode parks every Get until released, for testing connection
// multiplexing and ping latency under load.
type blockingNode struct {
	*store.MemNode
	entered chan struct{}
	release chan struct{}
}

func (b *blockingNode) Get(ctx context.Context, id store.ShardID) ([]byte, error) {
	b.entered <- struct{}{}
	select {
	case <-b.release:
	case <-ctx.Done(): // a force-closed server cancels parked operations
	}
	return b.MemNode.Get(ctx, id)
}

func TestRemotePoolMultiplexesConnections(t *testing.T) {
	const workers = 3
	node := &blockingNode{
		MemNode: store.NewMemNode("slow"),
		entered: make(chan struct{}, workers),
		release: make(chan struct{}),
	}
	id := store.ShardID{Object: "o", Row: 0}
	if err := node.MemNode.Put(t.Context(), id, []byte{1}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(node)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := NewRemoteNode("remote", addr.String(),
		WithTimeout(5*time.Second), WithPoolSize(workers))
	t.Cleanup(func() { _ = client.Close() })

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := client.Get(context.Background(), id); err != nil {
				t.Error(err)
			}
		}()
	}
	// All workers must reach the node concurrently: over a single serialized
	// connection only one request would be in the handler at a time and this
	// would deadlock instead of draining.
	for i := 0; i < workers; i++ {
		select {
		case <-node.entered:
		case <-time.After(3 * time.Second):
			t.Fatalf("only %d of %d requests in flight: pool is serializing", i, workers)
		}
	}
	close(node.release)
	wg.Wait()
}

func TestAvailableFastUnderLoad(t *testing.T) {
	// With every pooled connection busy in a slow transfer, a liveness ping
	// must still answer promptly on its dedicated connection.
	node := &blockingNode{
		MemNode: store.NewMemNode("slow"),
		entered: make(chan struct{}, 4),
		release: make(chan struct{}),
	}
	id := store.ShardID{Object: "o", Row: 0}
	if err := node.MemNode.Put(t.Context(), id, []byte{1}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(node)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := NewRemoteNode("remote", addr.String(),
		WithTimeout(10*time.Second), WithPoolSize(2), WithPingTimeout(2*time.Second))
	t.Cleanup(func() { _ = client.Close() })

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = client.Get(context.Background(), id)
		}()
	}
	<-node.entered
	<-node.entered // both pooled connections now held by blocked transfers
	start := time.Now()
	up := client.Available(t.Context())
	elapsed := time.Since(start)
	close(node.release)
	wg.Wait()
	if !up {
		t.Error("Available = false while the node is up")
	}
	if elapsed > 1500*time.Millisecond {
		t.Errorf("ping took %v behind busy transfers, want well under the ping deadline", elapsed)
	}
}

func TestRemoteBatchAfterServerRestart(t *testing.T) {
	// A pooled connection kept alive across a server restart must be
	// re-dialed transparently for batch operations too.
	mem := store.NewMemNode("backing")
	srv := NewServer(mem)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := NewRemoteNode("remote", addr.String(), WithTimeout(time.Second))
	t.Cleanup(func() { _ = client.Close() })
	ids := testIDs("o", 0, 1)
	data := [][]byte{{1}, {2}}
	for _, err := range client.PutBatch(t.Context(), ids, data) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(mem)
	if _, err := srv2.Listen(addr.String()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv2.Close() })
	for i, res := range client.GetBatch(t.Context(), ids) {
		if res.Err != nil || !bytes.Equal(res.Data, data[i]) {
			t.Errorf("post-restart shard %d = %v/%v", i, res.Data, res.Err)
		}
	}
}

func TestExchangeReassemblesPartialFrames(t *testing.T) {
	// A logical response split across statusPartial continuation frames
	// must come back as one payload with the terminal status.
	c1, c2 := net.Pipe()
	defer c1.Close()
	done := make(chan error, 1)
	go func() {
		defer c2.Close()
		r := bufio.NewReader(c2)
		if _, err := readFrame(r); err != nil {
			done <- err
			return
		}
		for _, part := range [][]byte{[]byte("hel"), []byte("lo ")} {
			if err := writeFrame(c2, encodeResponse(statusPartial, part)); err != nil {
				done <- err
				return
			}
		}
		done <- writeFrame(c2, encodeResponse(statusOK, []byte("world")))
	}()
	cn := &poolConn{c: c1, r: bufio.NewReader(c1), w: bufio.NewWriter(c1)}
	req, err := encodeRequest(request{op: opPing})
	if err != nil {
		t.Fatal(err)
	}
	status, payload, err := exchangeOn(cn, req, time.Now().Add(2*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if status != statusOK || string(payload) != "hello world" {
		t.Errorf("reassembled = %d %q, want statusOK \"hello world\"", status, payload)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestRemoteBatchSplitResponseCountsReadsOnce(t *testing.T) {
	// Force the server to split the batch response across several frames
	// and verify the shards round-trip intact with every read counted
	// exactly once: an oversized batch must never degrade into a
	// per-shard re-read of already-counted shards.
	defer func(prev int) { maxResponseChunk = prev }(maxResponseChunk)
	maxResponseChunk = 64

	mem, client := startServer(t)
	ids := testIDs("o", 0, 1, 2, 3)
	data := make([][]byte, len(ids))
	for i := range data {
		data[i] = bytes.Repeat([]byte{byte(i + 1)}, 100) // each shard > chunk
	}
	for i, err := range client.PutBatch(t.Context(), ids, data) {
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	mem.ResetStats()
	for i, res := range client.GetBatch(t.Context(), ids) {
		if res.Err != nil {
			t.Fatalf("get %d: %v", i, res.Err)
		}
		if !bytes.Equal(res.Data, data[i]) {
			t.Errorf("shard %d mismatch across split response", i)
		}
	}
	if got := mem.Stats().Reads; got != uint64(len(ids)) {
		t.Errorf("reads = %d, want %d: split response must not trigger re-reads", got, len(ids))
	}
}

func TestCloseRetiresInFlightConnections(t *testing.T) {
	// Close tears down the connection a running Get has checked out: the
	// Get fails as ErrNodeDown (never a bare I/O error), nothing slips
	// back into the pool, and later operations fail fast instead of
	// re-dialing a closed client.
	node := &blockingNode{
		MemNode: store.NewMemNode("slow"),
		entered: make(chan struct{}, 1),
		release: make(chan struct{}),
	}
	id := store.ShardID{Object: "o", Row: 0}
	if err := node.MemNode.Put(t.Context(), id, []byte{1}); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(node)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := NewRemoteNode("remote", addr.String(), WithTimeout(5*time.Second), WithPoolSize(1))
	done := make(chan error, 1)
	go func() {
		_, err := client.Get(context.Background(), id)
		done <- err
	}()
	<-node.entered // the Get holds the only pooled connection
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	close(node.release)
	err = <-done
	if !errors.Is(err, store.ErrNodeDown) {
		t.Fatalf("in-flight Get after Close = %v, want ErrNodeDown", err)
	}
	var se *store.ShardError
	if !errors.As(err, &se) || se.Shard != id || se.Op != "get" {
		t.Errorf("in-flight Get after Close: no ShardError provenance in %v", err)
	}
	client.mu.Lock()
	leaked := len(client.free) + len(client.inflight)
	client.mu.Unlock()
	if leaked != 0 {
		t.Errorf("%d connections still held after Close", leaked)
	}
	if _, err := client.Get(t.Context(), id); !errors.Is(err, store.ErrNodeDown) {
		t.Errorf("Get after Close = %v, want ErrNodeDown", err)
	}
}

func TestBatchProtocolRoundTrip(t *testing.T) {
	ids := []store.ShardID{{Object: "a", Row: 0}, {Object: "b/c#d", Row: -3}, {Object: "", Row: 7}}
	body, err := encodeGetBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeGetBatch(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ids) {
		t.Fatalf("decoded %d ids, want %d", len(back), len(ids))
	}
	for i := range ids {
		if back[i] != ids[i] {
			t.Errorf("id %d = %+v, want %+v", i, back[i], ids[i])
		}
	}

	data := [][]byte{{1, 2}, nil, {3}}
	pb, err := encodePutBatch(ids, data)
	if err != nil {
		t.Fatal(err)
	}
	pids, pdata, err := decodePutBatch(pb)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if pids[i] != ids[i] || !bytes.Equal(pdata[i], data[i]) {
			t.Errorf("put entry %d = %+v/%v", i, pids[i], pdata[i])
		}
	}

	results := []store.ShardResult{
		{Data: []byte{9, 9}},
		{Err: fmt.Errorf("gone: %w", store.ErrNotFound)},
		{Err: fmt.Errorf("rotten: %w", store.ErrCorrupt)},
	}
	rb := encodeBatchResults(results)
	decoded, err := decodeBatchResults(rb, ids, "test-node", "get")
	if err != nil {
		t.Fatal(err)
	}
	if decoded[0].Err != nil || !bytes.Equal(decoded[0].Data, []byte{9, 9}) {
		t.Errorf("result 0 = %+v", decoded[0])
	}
	if !errors.Is(decoded[1].Err, store.ErrNotFound) {
		t.Errorf("result 1 err = %v", decoded[1].Err)
	}
	if !errors.Is(decoded[2].Err, store.ErrCorrupt) {
		t.Errorf("result 2 err = %v", decoded[2].Err)
	}
}

func TestBatchProtocolRejectsMalformed(t *testing.T) {
	// Forged count far beyond the remaining bytes.
	forged := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := decodeGetBatch(forged); err == nil {
		t.Error("forged get-batch count: want error")
	}
	if _, _, err := decodePutBatch(forged); err == nil {
		t.Error("forged put-batch count: want error")
	}
	if _, err := decodeBatchResults(forged, nil, "test-node", "get"); err == nil {
		t.Error("forged result count: want error")
	}
	// Count/ids mismatch must be rejected, not misattributed.
	rb := encodeBatchResults([]store.ShardResult{{Data: []byte{1}}})
	if _, err := decodeBatchResults(rb, testIDs("o", 0, 1), "test-node", "get"); err == nil {
		t.Error("result count mismatch: want error")
	}
	// Truncated frames.
	good, err := encodeGetBatch(testIDs("obj", 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(good); cut++ {
		if _, err := decodeGetBatch(good[:cut]); err == nil {
			t.Errorf("truncated get batch at %d decoded", cut)
		}
	}
	// Trailing garbage.
	if _, err := decodeGetBatch(append(append([]byte(nil), good...), 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
	// Oversized batch refused at encode time.
	if _, err := encodeGetBatch(make([]store.ShardID, maxBatchShards+1)); !errors.Is(err, errBatchTooLarge) {
		t.Errorf("oversized batch err = %v, want errBatchTooLarge", err)
	}
}

func TestServerRejectsMalformedBatch(t *testing.T) {
	srv := NewServer(store.NewMemNode("n"))
	for _, payload := range [][]byte{nil, {1}, {0, 0, 1, 0}, {0xFF, 0xFF, 0xFF, 0xFF}} {
		body, err := encodeRequest(request{op: opGetBatch, payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		status, _ := srv.handle(t.Context(), body)
		if status != statusError {
			t.Errorf("malformed batch payload %v: status = %d, want statusError", payload, status)
		}
	}
	if got := srv.RequestStats().GetBatches; got != 0 {
		t.Errorf("malformed batches counted: %d", got)
	}
}
