package transport

import (
	"bytes"
	"testing"

	"github.com/secarchive/sec/internal/core"
	"github.com/secarchive/sec/internal/store"
)

// FuzzDecodeArchCommit feeds arbitrary payloads to the commit-request
// parser: it must never panic, and everything it accepts must survive an
// encode/decode round trip unchanged.
func FuzzDecodeArchCommit(f *testing.F) {
	seed, err := encodeArchCommit(4, []byte("object"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	noPre, err := encodeArchCommit(-1, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(noPre)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})                // truncated precondition
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // forged precondition
	f.Fuzz(func(t *testing.T, payload []byte) {
		expect, object, err := decodeArchCommit(payload)
		if err != nil {
			return
		}
		if expect < -1 || expect >= 1<<31 {
			return // forged u32 outside the encodable range
		}
		back, err := encodeArchCommit(expect, object)
		if err != nil {
			t.Fatalf("decoded commit does not re-encode: %v", err)
		}
		expect2, object2, err := decodeArchCommit(back)
		if err != nil {
			t.Fatalf("re-encoded commit does not decode: %v", err)
		}
		if expect2 != expect || !bytes.Equal(object2, object) {
			t.Fatalf("commit round trip mismatch: (%d, %v) vs (%d, %v)", expect, object, expect2, object2)
		}
	})
}

// FuzzDecodeArchVersion attacks the retrieve-response parser the client
// trusts: forged meta lengths and malformed JSON must error, never panic.
func FuzzDecodeArchVersion(f *testing.F) {
	seed, err := encodeArchVersion(ArchiveVersion{
		Version: 2,
		Data:    []byte("data"),
		Stats:   core.RetrievalStats{NodeReads: 5},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})        // forged meta length
	f.Add([]byte{0, 0, 0, 2, '{', 'x'})          // malformed meta JSON
	f.Add([]byte{0, 0, 0, 2, '{', '}', 1, 2, 3}) // valid meta, raw tail
	f.Fuzz(func(t *testing.T, payload []byte) {
		v, err := decodeArchVersion(payload)
		if err != nil {
			return
		}
		back, err := encodeArchVersion(v)
		if err != nil {
			t.Fatalf("decoded version does not re-encode: %v", err)
		}
		again, err := decodeArchVersion(back)
		if err != nil {
			t.Fatalf("re-encoded version does not decode: %v", err)
		}
		if again.Version != v.Version || !bytes.Equal(again.Data, v.Data) {
			t.Fatalf("version round trip mismatch")
		}
	})
}

// FuzzDecodeArchVersions attacks the retrieve-all response parser: forged
// counts, truncated chunks, and trailing bytes must all error cleanly.
func FuzzDecodeArchVersions(f *testing.F) {
	seed, err := encodeArchVersions([][]byte{[]byte("v1"), nil}, core.RetrievalStats{NodeReads: 9})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, '{', '}', 0xFF, 0xFF, 0xFF, 0xFF}) // forged count
	f.Add([]byte{0, 0, 0, 2, '{', '}', 0, 0, 0, 1, 0, 0, 0, 9}) // truncated chunk
	f.Add(append(append([]byte{}, seed...), 0xEE))              // trailing byte
	f.Fuzz(func(t *testing.T, payload []byte) {
		versions, stats, err := decodeArchVersions(payload)
		if err != nil {
			return
		}
		back, err := encodeArchVersions(versions, stats)
		if err != nil {
			t.Fatalf("decoded versions do not re-encode: %v", err)
		}
		again, _, err := decodeArchVersions(back)
		if err != nil {
			t.Fatalf("re-encoded versions do not decode: %v", err)
		}
		if len(again) != len(versions) {
			t.Fatalf("round trip count %d, want %d", len(again), len(versions))
		}
		for i := range versions {
			if !bytes.Equal(again[i], versions[i]) {
				t.Fatalf("round trip version %d mismatch", i+1)
			}
		}
	})
}

// FuzzArchServerHandle drives the full dispatch of a gateway-only server
// with arbitrary frames: no input may panic it, and every response must
// decode.
func FuzzArchServerHandle(f *testing.F) {
	commitBody, err := encodeArchCommit(-1, []byte("o"))
	if err != nil {
		f.Fatal(err)
	}
	for _, req := range []request{
		{op: opArchCreate, id: store.ShardID{Object: "a"}, payload: []byte(`{"n":12,"k":10,"block_size":4}`)},
		{op: opArchCommit, id: store.ShardID{Object: "a"}, payload: commitBody},
		{op: opArchGet, id: store.ShardID{Object: "a", Row: 1}},
		{op: opArchGetAll, id: store.ShardID{Object: "a"}},
		{op: opArchLog, id: store.ShardID{Object: "a"}},
		{op: opArchInfo, id: store.ShardID{Object: "a"}},
		{op: opArchCompact, id: store.ShardID{Object: "a", Row: 3}},
		{op: opArchScrub, id: store.ShardID{Object: "a", Row: 1}},
		{op: opArchRepair, id: store.ShardID{Object: "a", Row: 2}},
		{op: opArchCommit}, // no archive name
	} {
		body, err := encodeRequest(req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	f.Add([]byte{opArchCreate})
	f.Add([]byte{opArchRepair, 0xFF, 0xFF})
	srv := NewServer(nil, WithArchiveBackend(&stubArchiveBackend{}))
	f.Fuzz(func(t *testing.T, body []byte) {
		status, payload := srv.handle(t.Context(), body)
		if _, _, err := decodeResponse(encodeResponse(status, payload)); err != nil {
			t.Fatalf("response does not decode: %v", err)
		}
	})
}
