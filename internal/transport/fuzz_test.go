package transport

import (
	"bytes"
	"testing"

	"github.com/secarchive/sec/internal/store"
)

// FuzzDecodeRequest feeds arbitrary bodies to the request decoder: it must
// never panic, and everything it accepts must re-encode to an equivalent
// request.
func FuzzDecodeRequest(f *testing.F) {
	seed, err := encodeRequest(request{op: opPut, id: store.ShardID{Object: "arch/v1", Row: 3}, payload: []byte{1, 2}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{opGet})
	f.Add([]byte{opGet, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := decodeRequest(body)
		if err != nil {
			return
		}
		back, err := encodeRequest(req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v", err)
		}
		again, err := decodeRequest(back)
		if err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if again.op != req.op || again.id != req.id || !bytes.Equal(again.payload, req.payload) {
			t.Fatalf("request round trip mismatch: %+v vs %+v", req, again)
		}
	})
}

// FuzzServerHandle drives the full server dispatch with arbitrary frames:
// no input may panic the node server, and every response must decode.
func FuzzServerHandle(f *testing.F) {
	put, err := encodeRequest(request{op: opPut, id: store.ShardID{Object: "o", Row: 0}, payload: []byte{9}})
	if err != nil {
		f.Fatal(err)
	}
	get, err := encodeRequest(request{op: opGet, id: store.ShardID{Object: "o", Row: 0}})
	if err != nil {
		f.Fatal(err)
	}
	getBatchBody, err := encodeGetBatch([]store.ShardID{{Object: "o", Row: 0}, {Object: "o", Row: 1}})
	if err != nil {
		f.Fatal(err)
	}
	getBatch, err := encodeRequest(request{op: opGetBatch, payload: getBatchBody})
	if err != nil {
		f.Fatal(err)
	}
	putBatchBody, err := encodePutBatch([]store.ShardID{{Object: "o", Row: 2}}, [][]byte{{5}})
	if err != nil {
		f.Fatal(err)
	}
	putBatch, err := encodeRequest(request{op: opPutBatch, payload: putBatchBody})
	if err != nil {
		f.Fatal(err)
	}
	deleteBatchBody, err := encodeDeleteBatch([]store.ShardID{{Object: "o", Row: 0}, {Object: "o", Row: 3}})
	if err != nil {
		f.Fatal(err)
	}
	deleteBatch, err := encodeRequest(request{op: opDeleteBatch, payload: deleteBatchBody})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(put)
	f.Add(get)
	f.Add(getBatch)
	f.Add(putBatch)
	f.Add(deleteBatch)
	f.Add([]byte{0})
	f.Add([]byte{opResetStats, 0, 0, 0, 0, 0, 0})
	srv := NewServer(store.NewMemNode("fuzz"))
	f.Fuzz(func(t *testing.T, body []byte) {
		status, payload := srv.handle(t.Context(), body)
		if _, _, err := decodeResponse(encodeResponse(status, payload)); err != nil {
			t.Fatalf("response does not decode: %v", err)
		}
	})
}

// FuzzDecodeGetBatch feeds arbitrary payloads to the get-batch request
// parser: it must never panic, and everything it accepts must survive an
// encode/decode round trip unchanged.
func FuzzDecodeGetBatch(f *testing.F) {
	seed, err := encodeGetBatch([]store.ShardID{{Object: "arch/v1", Row: 3}, {Object: "", Row: -1}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})         // forged count
	f.Add([]byte{0, 0, 0, 2, 0, 1, 'a', 0, 0, 0}) // truncated second entry
	f.Fuzz(func(t *testing.T, payload []byte) {
		ids, err := decodeGetBatch(payload)
		if err != nil {
			return
		}
		back, err := encodeGetBatch(ids)
		if err != nil {
			t.Fatalf("decoded batch does not re-encode: %v", err)
		}
		again, err := decodeGetBatch(back)
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		if len(again) != len(ids) {
			t.Fatalf("round trip count %d, want %d", len(again), len(ids))
		}
		for i := range ids {
			if again[i] != ids[i] {
				t.Fatalf("round trip id %d: %+v vs %+v", i, ids[i], again[i])
			}
		}
	})
}

// FuzzDecodePutBatch does the same for the put-batch request parser, whose
// entries interleave shard IDs with length-prefixed payloads.
func FuzzDecodePutBatch(f *testing.F) {
	seed, err := encodePutBatch(
		[]store.ShardID{{Object: "o", Row: 0}, {Object: "p", Row: 9}},
		[][]byte{{1, 2, 3}, nil},
	)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}) // forged data length
	f.Fuzz(func(t *testing.T, payload []byte) {
		ids, data, err := decodePutBatch(payload)
		if err != nil {
			return
		}
		if len(ids) != len(data) {
			t.Fatalf("accepted mismatched batch: %d ids, %d payloads", len(ids), len(data))
		}
		back, err := encodePutBatch(ids, data)
		if err != nil {
			t.Fatalf("decoded batch does not re-encode: %v", err)
		}
		ids2, data2, err := decodePutBatch(back)
		if err != nil {
			t.Fatalf("re-encoded batch does not decode: %v", err)
		}
		for i := range ids {
			if ids2[i] != ids[i] || !bytes.Equal(data2[i], data[i]) {
				t.Fatalf("round trip entry %d mismatch", i)
			}
		}
	})
}

// FuzzDecodeBatchResults attacks the response parser the client trusts:
// malformed counts, truncated per-shard frames, and status bytes outside
// the known set must error or produce len(ids) well-formed results, never
// panic.
func FuzzDecodeBatchResults(f *testing.F) {
	ids := []store.ShardID{{Object: "o", Row: 0}, {Object: "o", Row: 1}}
	seed := encodeBatchResults([]store.ShardResult{
		{Data: []byte{1, 2}},
		{Err: store.ErrNotFound},
	})
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 2, 0xEE, 0, 0, 0, 0, 7, 0, 0, 0, 0}) // unknown status byte
	f.Add([]byte{0, 0, 0, 2, 0, 0xFF, 0xFF, 0xFF, 0xFF})       // forged chunk length
	f.Fuzz(func(t *testing.T, payload []byte) {
		results, err := decodeBatchResults(payload, ids, "test-node", "get")
		if err != nil {
			return
		}
		if len(results) != len(ids) {
			t.Fatalf("accepted %d results for %d ids", len(results), len(ids))
		}
		for i, res := range results {
			if res.Err != nil && res.Data != nil {
				t.Fatalf("result %d carries both data and error", i)
			}
		}
	})
}
