package transport

import (
	"bytes"
	"testing"

	"github.com/secarchive/sec/internal/store"
)

// FuzzDecodeRequest feeds arbitrary bodies to the request decoder: it must
// never panic, and everything it accepts must re-encode to an equivalent
// request.
func FuzzDecodeRequest(f *testing.F) {
	seed, err := encodeRequest(request{op: opPut, id: store.ShardID{Object: "arch/v1", Row: 3}, payload: []byte{1, 2}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{opGet})
	f.Add([]byte{opGet, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := decodeRequest(body)
		if err != nil {
			return
		}
		back, err := encodeRequest(req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v", err)
		}
		again, err := decodeRequest(back)
		if err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if again.op != req.op || again.id != req.id || !bytes.Equal(again.payload, req.payload) {
			t.Fatalf("request round trip mismatch: %+v vs %+v", req, again)
		}
	})
}

// FuzzServerHandle drives the full server dispatch with arbitrary frames:
// no input may panic the node server, and every response must decode.
func FuzzServerHandle(f *testing.F) {
	put, err := encodeRequest(request{op: opPut, id: store.ShardID{Object: "o", Row: 0}, payload: []byte{9}})
	if err != nil {
		f.Fatal(err)
	}
	get, err := encodeRequest(request{op: opGet, id: store.ShardID{Object: "o", Row: 0}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(put)
	f.Add(get)
	f.Add([]byte{0})
	f.Add([]byte{opResetStats, 0, 0, 0, 0, 0, 0})
	srv := NewServer(store.NewMemNode("fuzz"))
	f.Fuzz(func(t *testing.T, body []byte) {
		status, payload := srv.handle(body)
		if _, _, err := decodeResponse(encodeResponse(status, payload)); err != nil {
			t.Fatalf("response does not decode: %v", err)
		}
	})
}
