package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/secarchive/sec/internal/store"
)

// defaultTimeout bounds each remote operation round trip when the caller's
// context carries no (earlier) deadline.
const defaultTimeout = 5 * time.Second

// defaultPingTimeout bounds a liveness ping. Pings answer "is the node up
// right now", so waiting out a full transfer timeout would make liveness
// probes the slowest part of a degraded read; they get their own short
// deadline and their own connection.
const defaultPingTimeout = time.Second

// defaultPoolSize is the number of pooled connections per remote node.
// Batches to different objects and concurrent archives multiplex over the
// pool instead of queuing behind one serialized connection; a handful of
// connections is enough to keep a node busy without holding a large fd
// budget per peer.
const defaultPoolSize = 4

// maxBatchPutBytes bounds the payload bytes packed into one put-batch
// frame, leaving slack under maxFrame for the request header and per-shard
// framing.
const maxBatchPutBytes = maxFrame - 64<<10

// errClientClosed is the cause recorded when an operation hits a RemoteNode
// whose Close has been called; it wraps into ErrNodeDown so retrieval
// re-planning treats the torn-down client exactly like a transient node
// failure.
var errClientClosed = errors.New("transport: client closed")

// poolConn is one pooled client connection with its buffered reader and
// writer.
type poolConn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

func (p *poolConn) close() {
	_ = p.c.Close()
}

// RemoteNode is a store.Node backed by a transport server over TCP. It
// dials lazily and keeps a small pool of connections, so concurrent
// operations (and batches to different objects) run in parallel instead of
// serializing over a single connection; broken connections are re-dialed
// transparently. Liveness pings use a dedicated connection with a short
// deadline, so Available stays fast while transfers are in flight. It is
// safe for concurrent use.
//
// Every operation honors its context: the context deadline (when earlier
// than the per-operation timeout) becomes the wire deadline, and
// cancellation interrupts the in-flight read or write immediately. A
// connection whose RPC was cancelled mid-frame is retired, never returned
// to the pool, so later operations see a clean connection. Cancellation
// surfaces as the context's own error (wrapped in a *store.ShardError),
// not as ErrNodeDown: a cancelled request says nothing about node health.
type RemoteNode struct {
	id          string
	addr        string
	timeout     time.Duration
	pingTimeout time.Duration
	poolSize    int
	retry       store.RetryPolicy

	sem chan struct{} // caps connections checked out concurrently

	mu       sync.Mutex
	free     []*poolConn            // idle pooled connections
	inflight map[*poolConn]struct{} // connections checked out by running operations
	gen      int                    // bumped by Close so in-flight connections retire instead of re-pooling
	closed   bool                   // set by Close: operations fail fast with ErrNodeDown

	pingMu   sync.Mutex
	pingConn *poolConn // dedicated liveness connection
}

var _ store.Node = (*RemoteNode)(nil)
var _ store.BatchNode = (*RemoteNode)(nil)
var _ store.StatsReporter = (*RemoteNode)(nil)

// ClientOption configures a RemoteNode.
type ClientOption func(*RemoteNode)

// WithTimeout sets the per-operation deadline applied when the caller's
// context has no earlier one (default 5s).
func WithTimeout(d time.Duration) ClientOption {
	return func(n *RemoteNode) { n.timeout = d }
}

// WithPingTimeout sets the deadline for liveness pings (default 1s).
// Available answers false once it expires, so keep it above the expected
// network round trip but well below the operation timeout.
func WithPingTimeout(d time.Duration) ClientOption {
	return func(n *RemoteNode) { n.pingTimeout = d }
}

// WithPoolSize sets how many connections the node keeps pooled (default 4,
// minimum 1). The liveness-ping connection is separate and not counted.
func WithPoolSize(size int) ClientOption {
	return func(n *RemoteNode) {
		if size > 0 {
			n.poolSize = size
		}
	}
}

// WithRetryPolicy sets how transport-level failures — dial errors, broken,
// stale, or timed-out connections — are retried, with the policy's attempt
// budget and jittered exponential backoff (see store.RetryPolicy). Errors
// the server itself answered with (ErrNotFound, ErrCorrupt, ErrNodeDown
// statuses) are never retried here: the transport worked, and node-level
// retries belong to the cluster's policy. The default is a single attempt
// — plus the free stale-connection re-dial every attempt gets when a
// kept-alive pooled connection turns out to be dead, which preserves the
// longstanding behavior against server restarts.
func WithRetryPolicy(p store.RetryPolicy) ClientOption {
	return func(n *RemoteNode) { n.retry = p }
}

// NewRemoteNode returns a client node for the server at addr. No connection
// is made until the first operation.
func NewRemoteNode(id, addr string, opts ...ClientOption) *RemoteNode {
	n := &RemoteNode{
		id:          id,
		addr:        addr,
		timeout:     defaultTimeout,
		pingTimeout: defaultPingTimeout,
		poolSize:    defaultPoolSize,
		inflight:    make(map[*poolConn]struct{}),
	}
	for _, opt := range opts {
		opt(n)
	}
	n.sem = make(chan struct{}, n.poolSize)
	return n
}

// ID returns the client-side node identifier.
func (n *RemoteNode) ID() string { return n.id }

// Addr returns the server address the node dials.
func (n *RemoteNode) Addr() string { return n.addr }

// Put stores a shard on the remote node.
func (n *RemoteNode) Put(ctx context.Context, id store.ShardID, data []byte) error {
	_, err := n.roundTrip(ctx, "put", request{op: opPut, id: id, payload: data})
	return err
}

// Get fetches a shard from the remote node.
func (n *RemoteNode) Get(ctx context.Context, id store.ShardID) ([]byte, error) {
	return n.roundTrip(ctx, "get", request{op: opGet, id: id})
}

// Delete removes a shard from the remote node.
func (n *RemoteNode) Delete(ctx context.Context, id store.ShardID) error {
	_, err := n.roundTrip(ctx, "delete", request{op: opDelete, id: id})
	return err
}

// GetBatch fetches several shards in one round trip per batch frame (large
// batches are chunked). Per-shard outcomes come back independently, so one
// missing or corrupt shard no longer costs the rest of the batch. Against
// a server that cannot serve the batch (a pre-batching peer, or a response
// that would outgrow the frame limit) it falls back to per-shard gets; a
// cancelled or timed-out batch fails outright with the context's error.
func (n *RemoteNode) GetBatch(ctx context.Context, ids []store.ShardID) []store.ShardResult {
	results := make([]store.ShardResult, len(ids))
	for start := 0; start < len(ids); start += maxBatchShards {
		end := min(start+maxBatchShards, len(ids))
		n.getBatchChunk(ctx, ids[start:end], results[start:end])
	}
	return results
}

func (n *RemoteNode) getBatchChunk(ctx context.Context, ids []store.ShardID, out []store.ShardResult) {
	body, err := encodeGetBatch(ids)
	if err != nil {
		n.getPerShard(ctx, ids, out)
		return
	}
	payload, err := n.roundTrip(ctx, "get", request{op: opGetBatch, payload: body})
	if err != nil {
		if errors.Is(err, store.ErrNodeDown) || ctxCause(ctx) != nil {
			for i, id := range ids {
				out[i] = store.ShardResult{Err: n.batchErr("get", id, err)}
			}
			return
		}
		// The server answered but could not serve the batch (unknown op on
		// an old peer, oversized response, malformed frame): degrade to
		// per-shard operations instead of failing the shards.
		n.getPerShard(ctx, ids, out)
		return
	}
	results, err := decodeBatchResults(payload, ids, n.id, "get")
	if err != nil {
		n.getPerShard(ctx, ids, out)
		return
	}
	copy(out, results)
}

func (n *RemoteNode) getPerShard(ctx context.Context, ids []store.ShardID, out []store.ShardResult) {
	for i, id := range ids {
		data, err := n.Get(ctx, id)
		out[i] = store.ShardResult{Data: data, Err: err}
	}
}

// batchErr re-attributes a whole-batch failure to one shard, preserving
// the cause chain (ErrNodeDown, context errors) while naming the shard the
// caller asked for.
func (n *RemoteNode) batchErr(op string, id store.ShardID, err error) error {
	cause := err
	var se *store.ShardError
	if errors.As(err, &se) && se.Err != nil {
		cause = se.Err
	}
	return &store.ShardError{Node: n.id, Shard: id, Op: op, Err: cause}
}

// PutBatch stores several shards in one round trip per batch frame,
// chunking on both shard count and payload volume so every frame stays
// under the transport size limit. Like GetBatch, it degrades to per-shard
// puts against servers that cannot serve the batch.
func (n *RemoteNode) PutBatch(ctx context.Context, ids []store.ShardID, data [][]byte) []error {
	errs := make([]error, len(ids))
	start := 0
	for start < len(ids) {
		end, size := start, 4
		for end < len(ids) && end-start < maxBatchShards {
			entry := 2 + len(ids[end].Object) + 4 + 4 + len(data[end])
			if end > start && size+entry > maxBatchPutBytes {
				break
			}
			size += entry
			end++
		}
		n.putBatchChunk(ctx, ids[start:end], data[start:end], errs[start:end])
		start = end
	}
	return errs
}

func (n *RemoteNode) putBatchChunk(ctx context.Context, ids []store.ShardID, data [][]byte, out []error) {
	body, err := encodePutBatch(ids, data)
	if err != nil {
		n.putPerShard(ctx, ids, data, out)
		return
	}
	payload, err := n.roundTrip(ctx, "put", request{op: opPutBatch, payload: body})
	if err != nil {
		if errors.Is(err, store.ErrNodeDown) || ctxCause(ctx) != nil {
			for i, id := range ids {
				out[i] = n.batchErr("put", id, err)
			}
			return
		}
		n.putPerShard(ctx, ids, data, out)
		return
	}
	results, err := decodeBatchResults(payload, ids, n.id, "put")
	if err != nil {
		n.putPerShard(ctx, ids, data, out)
		return
	}
	for i, res := range results {
		out[i] = res.Err
	}
}

func (n *RemoteNode) putPerShard(ctx context.Context, ids []store.ShardID, data [][]byte, out []error) {
	for i, id := range ids {
		out[i] = n.Put(ctx, id, data[i])
	}
}

// DeleteBatch removes several shards in one round trip per batch frame.
// Per-shard outcomes come back independently (a shard already absent fails
// with ErrNotFound without costing the rest of the batch). Like GetBatch,
// it degrades to per-shard deletes against servers that predate the
// delete-batch op; a cancelled or timed-out batch fails outright with the
// context's error.
func (n *RemoteNode) DeleteBatch(ctx context.Context, ids []store.ShardID) []error {
	errs := make([]error, len(ids))
	for start := 0; start < len(ids); start += maxBatchShards {
		end := min(start+maxBatchShards, len(ids))
		n.deleteBatchChunk(ctx, ids[start:end], errs[start:end])
	}
	return errs
}

func (n *RemoteNode) deleteBatchChunk(ctx context.Context, ids []store.ShardID, out []error) {
	body, err := encodeDeleteBatch(ids)
	if err != nil {
		n.deletePerShard(ctx, ids, out)
		return
	}
	payload, err := n.roundTrip(ctx, "delete", request{op: opDeleteBatch, payload: body})
	if err != nil {
		if errors.Is(err, store.ErrNodeDown) || ctxCause(ctx) != nil {
			for i, id := range ids {
				out[i] = n.batchErr("delete", id, err)
			}
			return
		}
		// The server answered but could not serve the batch (unknown op on
		// an old peer, malformed frame): degrade to per-shard deletes.
		n.deletePerShard(ctx, ids, out)
		return
	}
	results, err := decodeBatchResults(payload, ids, n.id, "delete")
	if err != nil {
		n.deletePerShard(ctx, ids, out)
		return
	}
	for i, res := range results {
		out[i] = res.Err
	}
}

func (n *RemoteNode) deletePerShard(ctx context.Context, ids []store.ShardID, out []error) {
	for i, id := range ids {
		out[i] = n.Delete(ctx, id)
	}
}

// Available reports whether the remote node answers a ping and is up
// within the ping timeout and the context's deadline, whichever is
// earlier. The ping runs on its own connection with its own short
// deadline, so liveness probes stay fast even while every pooled
// connection is busy with bulk transfers.
func (n *RemoteNode) Available(ctx context.Context) bool {
	if ctx.Err() != nil {
		return false
	}
	body, err := encodeRequest(request{op: opPing})
	if err != nil {
		return false
	}
	//lint:allow lockheld pingMu exists to serialize the dedicated health-check exchange; operation traffic uses the pooled conns
	n.pingMu.Lock()
	defer n.pingMu.Unlock()
	if n.isClosed() {
		return false
	}
	deadline := earliestDeadline(ctx, n.pingTimeout)
	reused := n.pingConn != nil
	if n.pingConn == nil {
		cn, err := n.dialDeadline(deadline)
		if err != nil {
			return false
		}
		n.pingConn = cn
	}
	status, _, clean, err := n.exchangeCtx(ctx, n.pingConn, body, deadline)
	if err != nil && reused && ctx.Err() == nil {
		// The kept-alive ping connection may be stale (server restarted);
		// retry exactly once on a fresh dial.
		n.pingConn.close()
		n.pingConn = nil
		cn, derr := n.dialDeadline(deadline)
		if derr != nil {
			return false
		}
		n.pingConn = cn
		status, _, clean, err = n.exchangeCtx(ctx, n.pingConn, body, deadline)
	}
	if err != nil || !clean {
		n.pingConn.close()
		n.pingConn = nil
		return err == nil && status == statusOK
	}
	return status == statusOK
}

// Stats fetches the remote node's I/O counters. Transport and decode
// failures yield zero counters to satisfy the store.Node interface; use
// StatsErr when "unreachable" must be distinguishable from "idle".
func (n *RemoteNode) Stats() store.NodeStats {
	//lint:allow ctxcheck mirrors the ctx-less store.Node Stats contract; StatsErr is the ctx-aware form
	stats, _ := n.StatsErr(context.Background())
	return stats
}

// StatsErr fetches the remote node's I/O counters, reporting transport and
// decode failures instead of swallowing them into zeros. Aggregators
// (store.Cluster.TotalStatsChecked) use it to flag unreachable nodes so
// experiment I/O accounting is never silently short.
func (n *RemoteNode) StatsErr(ctx context.Context) (store.NodeStats, error) {
	payload, err := n.roundTrip(ctx, "stats", request{op: opStats})
	if err != nil {
		return store.NodeStats{}, err
	}
	stats, err := decodeStats(payload)
	if err != nil {
		return store.NodeStats{}, fmt.Errorf("node %s: %w", n.id, err)
	}
	return stats, nil
}

// ResetStats zeroes the remote node's I/O counters (best effort).
func (n *RemoteNode) ResetStats() {
	//lint:allow ctxcheck mirrors the ctx-less store.Node interface; best-effort fire-and-forget reset
	_, _ = n.roundTrip(context.Background(), "stats", request{op: opResetStats})
}

// Close tears down every connection - idle, checked out by an in-flight
// operation, and the ping connection - and fails future operations fast.
// An in-flight RPC whose connection is torn mid-frame surfaces ErrNodeDown
// (wrapping errClientClosed and the I/O cause), never a bare I/O error, so
// retrieval re-planning treats the closed client exactly like a transient
// node failure. The node does not re-dial afterwards.
func (n *RemoteNode) Close() error {
	n.mu.Lock()
	free := n.free
	n.free = nil
	inflight := make([]*poolConn, 0, len(n.inflight))
	for cn := range n.inflight {
		inflight = append(inflight, cn)
	}
	n.gen++ // connections checked out right now retire instead of re-pooling
	n.closed = true
	n.mu.Unlock()
	for _, cn := range free {
		cn.close()
	}
	for _, cn := range inflight {
		cn.close()
	}
	n.pingMu.Lock()
	if n.pingConn != nil {
		n.pingConn.close()
		n.pingConn = nil
	}
	n.pingMu.Unlock()
	return nil
}

func (n *RemoteNode) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

// opErr classifies a failed round trip: a done context surfaces its own
// error (cancellation is a property of the request), everything else is
// attributed to the node as ErrNodeDown so healing treats it as a
// transient node failure.
func (n *RemoteNode) opErr(ctx context.Context, op string, id store.ShardID, cause error) error {
	if ctxErr := ctxCause(ctx); ctxErr != nil {
		return &store.ShardError{Node: n.id, Shard: id, Op: op, Err: ctxErr}
	}
	return &store.ShardError{Node: n.id, Shard: id, Op: op, Err: fmt.Errorf("%w: %w", store.ErrNodeDown, cause)}
}

// roundTrip sends one request frame and reads one response frame over a
// pooled connection, retrying transport-level failures under the
// configured retry policy (WithRetryPolicy; default one attempt). Every
// attempt additionally re-dials once for free when a kept-alive connection
// turns out to be stale (the server restarted since the last operation).
// Retrying is safe: Put/Get/Ping/Stats are idempotent, and a Delete whose
// earlier attempt was applied but whose response was lost reports
// ErrNotFound on the retry, which callers already treat as "gone" -
// at-least-once semantics. Errors the server answered with are returned
// without retry; only failures to complete the exchange are re-attempted.
//
// The wire deadline is the earlier of the per-operation timeout and the
// context's deadline, recomputed per attempt; cancellation interrupts the
// exchange immediately, stops the retry loop, and the connection is
// retired instead of re-pooled.
func (n *RemoteNode) roundTrip(ctx context.Context, op string, req request) ([]byte, error) {
	body, err := encodeRequest(req)
	if err != nil {
		return nil, err
	}
	select {
	case n.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, n.opErr(ctx, op, req.id, ctx.Err())
	}
	defer func() { <-n.sem }()
	maxAttempts := n.retry.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		status, payload, err := n.tryExchange(ctx, body)
		if err == nil {
			if err := errorFor(status, payload, n.id, op, req.id); err != nil {
				return nil, err
			}
			// Copy out of the frame buffer so callers own the result.
			return append([]byte(nil), payload...), nil
		}
		lastErr = err
		if attempt >= maxAttempts || ctxCause(ctx) != nil || n.isClosed() {
			break
		}
		if n.retry.Sleep(ctx, attempt) != nil {
			break
		}
	}
	return nil, n.opErr(ctx, op, req.id, lastErr)
}

// tryExchange performs one pooled request/response exchange, including the
// free stale-connection re-dial when a reused pooled connection fails. The
// returned error is a raw transport cause (not yet attributed to the
// node); a nil error means the server answered with status and payload.
func (n *RemoteNode) tryExchange(ctx context.Context, body []byte) (byte, []byte, error) {
	deadline := earliestDeadline(ctx, n.timeout)
	cn, reused, gen, err := n.takeConn(deadline)
	if err != nil {
		return 0, nil, err
	}
	status, payload, clean, err := n.exchangeCtx(ctx, cn, body, deadline)
	if err != nil && reused && ctxCause(ctx) == nil && !n.isClosed() {
		n.retireConn(cn)
		if cn, err = n.dialConn(deadline); err == nil {
			status, payload, clean, err = n.exchangeCtx(ctx, cn, body, deadline)
		} else {
			cn = nil
		}
	}
	if err != nil {
		if cn != nil {
			n.retireConn(cn)
		}
		return 0, nil, err
	}
	if !clean {
		n.retireConn(cn)
	} else {
		n.putConn(cn, gen)
	}
	return status, payload, nil
}

// exchangeCtx runs one request/response exchange under both the wire
// deadline and the context: if the context is cancelled mid-exchange, the
// connection's deadline is pulled into the past, failing the blocked read
// or write immediately. clean reports whether the connection is still fit
// for re-pooling; it is false on any error (a partial frame may be on the
// wire) and on the rare race where the exchange succeeded but the
// cancellation callback had already started - the conn must then be
// retired so the callback cannot poison a later operation's deadline.
func (n *RemoteNode) exchangeCtx(ctx context.Context, cn *poolConn, body []byte, deadline time.Time) (status byte, payload []byte, clean bool, err error) {
	if err := ctx.Err(); err != nil {
		return 0, nil, true, err
	}
	stop := context.AfterFunc(ctx, func() {
		_ = cn.c.SetDeadline(time.Unix(1, 0)) // interrupt the in-flight read/write
	})
	status, payload, err = exchangeOn(cn, body, deadline)
	clean = stop() && err == nil
	if err != nil {
		if cause := ctxCause(ctx); cause != nil {
			err = cause
		}
	}
	return status, payload, clean, err
}

// ctxCause reports why a failed exchange should be attributed to the
// context: its Err when done, or DeadlineExceeded when its deadline has
// passed even though the context timer has not fired yet (the net poller
// and the context run on separate timers, so a wire deadline copied from
// the context can expire a moment before ctx.Err() flips).
func ctxCause(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return nil
}

// exchangeOn writes one request frame and reads one logical response on
// the given connection under the deadline, reassembling statusPartial
// continuation frames into a single payload.
func exchangeOn(cn *poolConn, body []byte, deadline time.Time) (byte, []byte, error) {
	if err := cn.c.SetDeadline(deadline); err != nil {
		return 0, nil, err
	}
	if err := writeFrame(cn.w, body); err != nil {
		return 0, nil, err
	}
	if err := cn.w.Flush(); err != nil {
		return 0, nil, err
	}
	var full []byte
	for {
		frame, err := readFrame(cn.r)
		if err != nil {
			return 0, nil, err
		}
		status, payload, err := decodeResponse(frame)
		if err != nil {
			return 0, nil, err
		}
		if status != statusPartial {
			if full != nil {
				payload = append(full, payload...)
			}
			return status, payload, nil
		}
		full = append(full, payload...)
	}
}

// takeConn pops an idle pooled connection or dials a new one, registering
// it as in-flight so Close can tear it down, and returns the pool
// generation it belongs to. The caller must hold a sem slot, which caps
// checked-out connections at poolSize. After Close it fails with
// errClientClosed instead of resurrecting the pool.
func (n *RemoteNode) takeConn(deadline time.Time) (cn *poolConn, reused bool, gen int, err error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, false, 0, errClientClosed
	}
	gen = n.gen
	if len(n.free) > 0 {
		cn = n.free[len(n.free)-1]
		n.free = n.free[:len(n.free)-1]
		n.inflight[cn] = struct{}{}
	}
	n.mu.Unlock()
	if cn != nil {
		return cn, true, gen, nil
	}
	cn, err = n.dialConn(deadline)
	return cn, false, gen, err
}

// dialConn dials a fresh connection and registers it as in-flight; if
// Close ran while the dial was outstanding, the connection is torn down
// and errClientClosed returned.
func (n *RemoteNode) dialConn(deadline time.Time) (*poolConn, error) {
	cn, err := n.dialDeadline(deadline)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		cn.close()
		return nil, errClientClosed
	}
	n.inflight[cn] = struct{}{}
	n.mu.Unlock()
	return cn, nil
}

// retireConn drops a checked-out connection for good.
func (n *RemoteNode) retireConn(cn *poolConn) {
	n.mu.Lock()
	delete(n.inflight, cn)
	n.mu.Unlock()
	cn.close()
}

// putConn returns a healthy connection to the pool, unless Close ran
// since it was taken (the generation moved on) or the pool is full.
func (n *RemoteNode) putConn(cn *poolConn, gen int) {
	n.mu.Lock()
	delete(n.inflight, cn)
	if gen == n.gen && len(n.free) < n.poolSize {
		n.free = append(n.free, cn)
		cn = nil
	}
	n.mu.Unlock()
	if cn != nil {
		cn.close()
	}
}

// dialDeadline dials the node, giving up at the wire deadline. A deadline
// already in the past fails immediately (net.DialTimeout would read a
// non-positive timeout as "no timeout").
func (n *RemoteNode) dialDeadline(deadline time.Time) (*poolConn, error) {
	timeout := time.Until(deadline)
	if timeout <= 0 {
		return nil, context.DeadlineExceeded
	}
	c, err := net.DialTimeout("tcp", n.addr, timeout)
	if err != nil {
		return nil, err
	}
	return &poolConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}, nil
}

// earliestDeadline returns now+fallback or the context's deadline,
// whichever comes first.
func earliestDeadline(ctx context.Context, fallback time.Duration) time.Time {
	deadline := time.Now().Add(fallback)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	return deadline
}
