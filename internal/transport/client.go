package transport

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/secarchive/sec/internal/store"
)

// defaultTimeout bounds each remote operation round trip.
const defaultTimeout = 5 * time.Second

// RemoteNode is a store.Node backed by a transport server over TCP. It
// dials lazily, keeps one connection, and re-dials after errors. It is safe
// for concurrent use; operations are serialized over the connection.
type RemoteNode struct {
	id      string
	addr    string
	timeout time.Duration

	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

var _ store.Node = (*RemoteNode)(nil)
var _ store.StatsReporter = (*RemoteNode)(nil)

// ClientOption configures a RemoteNode.
type ClientOption func(*RemoteNode)

// WithTimeout sets the per-operation deadline (default 5s).
func WithTimeout(d time.Duration) ClientOption {
	return func(n *RemoteNode) { n.timeout = d }
}

// NewRemoteNode returns a client node for the server at addr. No connection
// is made until the first operation.
func NewRemoteNode(id, addr string, opts ...ClientOption) *RemoteNode {
	n := &RemoteNode{id: id, addr: addr, timeout: defaultTimeout}
	for _, opt := range opts {
		opt(n)
	}
	return n
}

// ID returns the client-side node identifier.
func (n *RemoteNode) ID() string { return n.id }

// Addr returns the server address the node dials.
func (n *RemoteNode) Addr() string { return n.addr }

// Put stores a shard on the remote node.
func (n *RemoteNode) Put(id store.ShardID, data []byte) error {
	_, err := n.roundTrip(request{op: opPut, id: id, payload: data})
	return err
}

// Get fetches a shard from the remote node.
func (n *RemoteNode) Get(id store.ShardID) ([]byte, error) {
	return n.roundTrip(request{op: opGet, id: id})
}

// Delete removes a shard from the remote node.
func (n *RemoteNode) Delete(id store.ShardID) error {
	_, err := n.roundTrip(request{op: opDelete, id: id})
	return err
}

// Available reports whether the remote node answers a ping and is up.
func (n *RemoteNode) Available() bool {
	_, err := n.roundTrip(request{op: opPing})
	return err == nil
}

// Stats fetches the remote node's I/O counters. Transport and decode
// failures yield zero counters to satisfy the store.Node interface; use
// StatsErr when "unreachable" must be distinguishable from "idle".
func (n *RemoteNode) Stats() store.NodeStats {
	stats, _ := n.StatsErr()
	return stats
}

// StatsErr fetches the remote node's I/O counters, reporting transport and
// decode failures instead of swallowing them into zeros. Aggregators
// (store.Cluster.TotalStatsChecked) use it to flag unreachable nodes so
// experiment I/O accounting is never silently short.
func (n *RemoteNode) StatsErr() (store.NodeStats, error) {
	payload, err := n.roundTrip(request{op: opStats})
	if err != nil {
		return store.NodeStats{}, err
	}
	stats, err := decodeStats(payload)
	if err != nil {
		return store.NodeStats{}, fmt.Errorf("node %s: %w", n.id, err)
	}
	return stats, nil
}

// ResetStats zeroes the remote node's I/O counters (best effort).
func (n *RemoteNode) ResetStats() {
	_, _ = n.roundTrip(request{op: opResetStats})
}

// Close tears down the client connection. Further operations re-dial.
func (n *RemoteNode) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.dropLocked()
}

func (n *RemoteNode) roundTrip(req request) ([]byte, error) {
	body, err := encodeRequest(req)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	reused := n.conn != nil
	if err := n.connectLocked(); err != nil {
		return nil, fmt.Errorf("node %s: %w: %w", n.id, store.ErrNodeDown, err)
	}
	deadline := time.Now().Add(n.timeout)
	if err := n.conn.SetDeadline(deadline); err != nil {
		_ = n.dropLocked()
		return nil, fmt.Errorf("node %s: %w: %w", n.id, store.ErrNodeDown, err)
	}
	respBody, err := n.exchangeLocked(body)
	if err != nil && reused {
		// A kept-alive connection may be stale (the server restarted since
		// the last operation), so retry exactly once on a fresh dial before
		// reporting the node down. Put/Get/Ping/Stats are idempotent; a
		// Delete whose first attempt was applied but whose response was
		// lost reports ErrNotFound on the retry, which callers already
		// treat as "gone" (at-least-once semantics).
		_ = n.dropLocked()
		if err = n.connectLocked(); err == nil {
			if err = n.conn.SetDeadline(deadline); err == nil {
				respBody, err = n.exchangeLocked(body)
			}
		}
	}
	if err != nil {
		_ = n.dropLocked()
		return nil, fmt.Errorf("node %s: %w: %w", n.id, store.ErrNodeDown, err)
	}
	status, payload, err := decodeResponse(respBody)
	if err != nil {
		_ = n.dropLocked()
		return nil, fmt.Errorf("node %s: %w: %w", n.id, store.ErrNodeDown, err)
	}
	if err := errorFor(status, payload, req.id); err != nil {
		return nil, err
	}
	// Copy out of the frame buffer so callers own the result.
	return append([]byte(nil), payload...), nil
}

func (n *RemoteNode) exchangeLocked(body []byte) ([]byte, error) {
	if err := writeFrame(n.w, body); err != nil {
		return nil, err
	}
	if err := n.w.Flush(); err != nil {
		return nil, err
	}
	return readFrame(n.r)
}

func (n *RemoteNode) connectLocked() error {
	if n.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", n.addr, n.timeout)
	if err != nil {
		return err
	}
	n.conn = conn
	n.r = bufio.NewReader(conn)
	n.w = bufio.NewWriter(conn)
	return nil
}

func (n *RemoteNode) dropLocked() error {
	if n.conn == nil {
		return nil
	}
	err := n.conn.Close()
	n.conn, n.r, n.w = nil, nil, nil
	return err
}
