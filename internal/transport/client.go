package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/secarchive/sec/internal/store"
)

// defaultTimeout bounds each remote operation round trip.
const defaultTimeout = 5 * time.Second

// defaultPingTimeout bounds a liveness ping. Pings answer "is the node up
// right now", so waiting out a full transfer timeout would make liveness
// probes the slowest part of a degraded read; they get their own short
// deadline and their own connection.
const defaultPingTimeout = time.Second

// defaultPoolSize is the number of pooled connections per remote node.
// Batches to different objects and concurrent archives multiplex over the
// pool instead of queuing behind one serialized connection; a handful of
// connections is enough to keep a node busy without holding a large fd
// budget per peer.
const defaultPoolSize = 4

// maxBatchPutBytes bounds the payload bytes packed into one put-batch
// frame, leaving slack under maxFrame for the request header and per-shard
// framing.
const maxBatchPutBytes = maxFrame - 64<<10

// poolConn is one pooled client connection with its buffered reader and
// writer.
type poolConn struct {
	c net.Conn
	r *bufio.Reader
	w *bufio.Writer
}

func (p *poolConn) close() {
	_ = p.c.Close()
}

// RemoteNode is a store.Node backed by a transport server over TCP. It
// dials lazily and keeps a small pool of connections, so concurrent
// operations (and batches to different objects) run in parallel instead of
// serializing over a single connection; broken connections are re-dialed
// transparently. Liveness pings use a dedicated connection with a short
// deadline, so Available stays fast while transfers are in flight. It is
// safe for concurrent use.
type RemoteNode struct {
	id          string
	addr        string
	timeout     time.Duration
	pingTimeout time.Duration
	poolSize    int

	sem chan struct{} // caps connections checked out concurrently

	mu   sync.Mutex
	free []*poolConn // idle pooled connections
	gen  int         // bumped by Close so in-flight connections retire instead of re-pooling

	pingMu   sync.Mutex
	pingConn *poolConn // dedicated liveness connection
}

var _ store.Node = (*RemoteNode)(nil)
var _ store.BatchNode = (*RemoteNode)(nil)
var _ store.StatsReporter = (*RemoteNode)(nil)

// ClientOption configures a RemoteNode.
type ClientOption func(*RemoteNode)

// WithTimeout sets the per-operation deadline (default 5s).
func WithTimeout(d time.Duration) ClientOption {
	return func(n *RemoteNode) { n.timeout = d }
}

// WithPingTimeout sets the deadline for liveness pings (default 1s).
// Available answers false once it expires, so keep it above the expected
// network round trip but well below the operation timeout.
func WithPingTimeout(d time.Duration) ClientOption {
	return func(n *RemoteNode) { n.pingTimeout = d }
}

// WithPoolSize sets how many connections the node keeps pooled (default 4,
// minimum 1). The liveness-ping connection is separate and not counted.
func WithPoolSize(size int) ClientOption {
	return func(n *RemoteNode) {
		if size > 0 {
			n.poolSize = size
		}
	}
}

// NewRemoteNode returns a client node for the server at addr. No connection
// is made until the first operation.
func NewRemoteNode(id, addr string, opts ...ClientOption) *RemoteNode {
	n := &RemoteNode{
		id:          id,
		addr:        addr,
		timeout:     defaultTimeout,
		pingTimeout: defaultPingTimeout,
		poolSize:    defaultPoolSize,
	}
	for _, opt := range opts {
		opt(n)
	}
	n.sem = make(chan struct{}, n.poolSize)
	return n
}

// ID returns the client-side node identifier.
func (n *RemoteNode) ID() string { return n.id }

// Addr returns the server address the node dials.
func (n *RemoteNode) Addr() string { return n.addr }

// Put stores a shard on the remote node.
func (n *RemoteNode) Put(id store.ShardID, data []byte) error {
	_, err := n.roundTrip(request{op: opPut, id: id, payload: data})
	return err
}

// Get fetches a shard from the remote node.
func (n *RemoteNode) Get(id store.ShardID) ([]byte, error) {
	return n.roundTrip(request{op: opGet, id: id})
}

// Delete removes a shard from the remote node.
func (n *RemoteNode) Delete(id store.ShardID) error {
	_, err := n.roundTrip(request{op: opDelete, id: id})
	return err
}

// GetBatch fetches several shards in one round trip per batch frame (large
// batches are chunked). Per-shard outcomes come back independently, so one
// missing or corrupt shard no longer costs the rest of the batch. Against
// a server that cannot serve the batch (a pre-batching peer, or a response
// that would outgrow the frame limit) it falls back to per-shard gets.
func (n *RemoteNode) GetBatch(ids []store.ShardID) []store.ShardResult {
	results := make([]store.ShardResult, len(ids))
	for start := 0; start < len(ids); start += maxBatchShards {
		end := min(start+maxBatchShards, len(ids))
		n.getBatchChunk(ids[start:end], results[start:end])
	}
	return results
}

func (n *RemoteNode) getBatchChunk(ids []store.ShardID, out []store.ShardResult) {
	body, err := encodeGetBatch(ids)
	if err != nil {
		n.getPerShard(ids, out)
		return
	}
	payload, err := n.roundTrip(request{op: opGetBatch, payload: body})
	if err != nil {
		if errors.Is(err, store.ErrNodeDown) {
			for i := range out {
				out[i] = store.ShardResult{Err: err}
			}
			return
		}
		// The server answered but could not serve the batch (unknown op on
		// an old peer, oversized response, malformed frame): degrade to
		// per-shard operations instead of failing the shards.
		n.getPerShard(ids, out)
		return
	}
	results, err := decodeBatchResults(payload, ids)
	if err != nil {
		n.getPerShard(ids, out)
		return
	}
	copy(out, results)
}

func (n *RemoteNode) getPerShard(ids []store.ShardID, out []store.ShardResult) {
	for i, id := range ids {
		data, err := n.Get(id)
		out[i] = store.ShardResult{Data: data, Err: err}
	}
}

// PutBatch stores several shards in one round trip per batch frame,
// chunking on both shard count and payload volume so every frame stays
// under the transport size limit. Like GetBatch, it degrades to per-shard
// puts against servers that cannot serve the batch.
func (n *RemoteNode) PutBatch(ids []store.ShardID, data [][]byte) []error {
	errs := make([]error, len(ids))
	start := 0
	for start < len(ids) {
		end, size := start, 4
		for end < len(ids) && end-start < maxBatchShards {
			entry := 2 + len(ids[end].Object) + 4 + 4 + len(data[end])
			if end > start && size+entry > maxBatchPutBytes {
				break
			}
			size += entry
			end++
		}
		n.putBatchChunk(ids[start:end], data[start:end], errs[start:end])
		start = end
	}
	return errs
}

func (n *RemoteNode) putBatchChunk(ids []store.ShardID, data [][]byte, out []error) {
	body, err := encodePutBatch(ids, data)
	if err != nil {
		n.putPerShard(ids, data, out)
		return
	}
	payload, err := n.roundTrip(request{op: opPutBatch, payload: body})
	if err != nil {
		if errors.Is(err, store.ErrNodeDown) {
			for i := range out {
				out[i] = err
			}
			return
		}
		n.putPerShard(ids, data, out)
		return
	}
	results, err := decodeBatchResults(payload, ids)
	if err != nil {
		n.putPerShard(ids, data, out)
		return
	}
	for i, res := range results {
		out[i] = res.Err
	}
}

func (n *RemoteNode) putPerShard(ids []store.ShardID, data [][]byte, out []error) {
	for i, id := range ids {
		out[i] = n.Put(id, data[i])
	}
}

// Available reports whether the remote node answers a ping and is up. The
// ping runs on its own connection with its own short deadline, so liveness
// probes stay fast even while every pooled connection is busy with bulk
// transfers.
func (n *RemoteNode) Available() bool {
	body, err := encodeRequest(request{op: opPing})
	if err != nil {
		return false
	}
	n.pingMu.Lock()
	defer n.pingMu.Unlock()
	deadline := time.Now().Add(n.pingTimeout)
	reused := n.pingConn != nil
	if n.pingConn == nil {
		cn, err := n.dial(n.pingTimeout)
		if err != nil {
			return false
		}
		n.pingConn = cn
	}
	status, _, err := exchangeOn(n.pingConn, body, deadline)
	if err != nil && reused {
		// The kept-alive ping connection may be stale (server restarted);
		// retry exactly once on a fresh dial.
		n.pingConn.close()
		n.pingConn = nil
		cn, derr := n.dial(n.pingTimeout)
		if derr != nil {
			return false
		}
		n.pingConn = cn
		status, _, err = exchangeOn(n.pingConn, body, deadline)
	}
	if err != nil {
		n.pingConn.close()
		n.pingConn = nil
		return false
	}
	return status == statusOK
}

// Stats fetches the remote node's I/O counters. Transport and decode
// failures yield zero counters to satisfy the store.Node interface; use
// StatsErr when "unreachable" must be distinguishable from "idle".
func (n *RemoteNode) Stats() store.NodeStats {
	stats, _ := n.StatsErr()
	return stats
}

// StatsErr fetches the remote node's I/O counters, reporting transport and
// decode failures instead of swallowing them into zeros. Aggregators
// (store.Cluster.TotalStatsChecked) use it to flag unreachable nodes so
// experiment I/O accounting is never silently short.
func (n *RemoteNode) StatsErr() (store.NodeStats, error) {
	payload, err := n.roundTrip(request{op: opStats})
	if err != nil {
		return store.NodeStats{}, err
	}
	stats, err := decodeStats(payload)
	if err != nil {
		return store.NodeStats{}, fmt.Errorf("node %s: %w", n.id, err)
	}
	return stats, nil
}

// ResetStats zeroes the remote node's I/O counters (best effort).
func (n *RemoteNode) ResetStats() {
	_, _ = n.roundTrip(request{op: opResetStats})
}

// Close tears down the node's idle pooled connections and the ping
// connection. Connections checked out by in-flight operations close when
// those operations finish; further operations re-dial.
func (n *RemoteNode) Close() error {
	n.mu.Lock()
	free := n.free
	n.free = nil
	n.gen++ // connections checked out right now close instead of re-pooling
	n.mu.Unlock()
	for _, cn := range free {
		cn.close()
	}
	n.pingMu.Lock()
	if n.pingConn != nil {
		n.pingConn.close()
		n.pingConn = nil
	}
	n.pingMu.Unlock()
	return nil
}

// roundTrip sends one request frame and reads one response frame over a
// pooled connection, re-dialing once if a kept-alive connection turns out
// to be stale (the server restarted since the last operation; Put/Get/
// Ping/Stats are idempotent, and a Delete whose first attempt was applied
// but whose response was lost reports ErrNotFound on the retry, which
// callers already treat as "gone" - at-least-once semantics).
func (n *RemoteNode) roundTrip(req request) ([]byte, error) {
	body, err := encodeRequest(req)
	if err != nil {
		return nil, err
	}
	n.sem <- struct{}{}
	defer func() { <-n.sem }()
	deadline := time.Now().Add(n.timeout)
	cn, reused, gen, err := n.takeConn()
	if err != nil {
		return nil, fmt.Errorf("node %s: %w: %w", n.id, store.ErrNodeDown, err)
	}
	status, payload, err := exchangeOn(cn, body, deadline)
	if err != nil && reused {
		cn.close()
		if cn, err = n.dial(n.timeout); err == nil {
			status, payload, err = exchangeOn(cn, body, deadline)
		}
	}
	if err != nil {
		if cn != nil {
			cn.close()
		}
		return nil, fmt.Errorf("node %s: %w: %w", n.id, store.ErrNodeDown, err)
	}
	n.putConn(cn, gen)
	if err := errorFor(status, payload, req.id); err != nil {
		return nil, err
	}
	// Copy out of the frame buffer so callers own the result.
	return append([]byte(nil), payload...), nil
}

// exchangeOn writes one request frame and reads one logical response on
// the given connection under the deadline, reassembling statusPartial
// continuation frames into a single payload.
func exchangeOn(cn *poolConn, body []byte, deadline time.Time) (byte, []byte, error) {
	if err := cn.c.SetDeadline(deadline); err != nil {
		return 0, nil, err
	}
	if err := writeFrame(cn.w, body); err != nil {
		return 0, nil, err
	}
	if err := cn.w.Flush(); err != nil {
		return 0, nil, err
	}
	var full []byte
	for {
		frame, err := readFrame(cn.r)
		if err != nil {
			return 0, nil, err
		}
		status, payload, err := decodeResponse(frame)
		if err != nil {
			return 0, nil, err
		}
		if status != statusPartial {
			if full != nil {
				payload = append(full, payload...)
			}
			return status, payload, nil
		}
		full = append(full, payload...)
	}
}

// takeConn pops an idle pooled connection or dials a new one, returning
// the pool generation the connection belongs to. The caller must hold a
// sem slot, which caps checked-out connections at poolSize.
func (n *RemoteNode) takeConn() (cn *poolConn, reused bool, gen int, err error) {
	n.mu.Lock()
	gen = n.gen
	if len(n.free) > 0 {
		cn = n.free[len(n.free)-1]
		n.free = n.free[:len(n.free)-1]
	}
	n.mu.Unlock()
	if cn != nil {
		return cn, true, gen, nil
	}
	cn, err = n.dial(n.timeout)
	return cn, false, gen, err
}

// putConn returns a healthy connection to the pool, unless Close ran
// since it was taken (the generation moved on) or the pool is full.
func (n *RemoteNode) putConn(cn *poolConn, gen int) {
	n.mu.Lock()
	if gen == n.gen && len(n.free) < n.poolSize {
		n.free = append(n.free, cn)
		cn = nil
	}
	n.mu.Unlock()
	if cn != nil {
		cn.close()
	}
}

func (n *RemoteNode) dial(timeout time.Duration) (*poolConn, error) {
	c, err := net.DialTimeout("tcp", n.addr, timeout)
	if err != nil {
		return nil, err
	}
	return &poolConn{c: c, r: bufio.NewReader(c), w: bufio.NewWriter(c)}, nil
}
