package transport

import (
	"bytes"
	"context"
	"errors"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"github.com/secarchive/sec/internal/store"
)

// startServer runs a transport server over a fresh MemNode and returns the
// backing node, a connected client, and a cleanup-registered server.
func startServer(t *testing.T) (*store.MemNode, *RemoteNode) {
	t.Helper()
	mem := store.NewMemNode("backing")
	srv := NewServer(mem)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := NewRemoteNode("remote-0", addr.String(), WithTimeout(2*time.Second))
	t.Cleanup(func() { _ = client.Close() })
	return mem, client
}

func TestRemotePutGetDelete(t *testing.T) {
	_, client := startServer(t)
	id := store.ShardID{Object: "arch/v1", Row: 3}
	payload := []byte{1, 2, 3, 4, 5}
	if err := client.Put(t.Context(), id, payload); err != nil {
		t.Fatal(err)
	}
	got, err := client.Get(t.Context(), id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("Get = %v, want %v", got, payload)
	}
	if err := client.Delete(t.Context(), id); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get(t.Context(), id); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("Get after delete: err = %v, want ErrNotFound", err)
	}
}

func TestRemoteLargePayload(t *testing.T) {
	_, client := startServer(t)
	id := store.ShardID{Object: "big", Row: 0}
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := client.Put(t.Context(), id, payload); err != nil {
		t.Fatal(err)
	}
	got, err := client.Get(t.Context(), id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Error("large payload mismatch")
	}
}

func TestRemoteEmptyPayloadAndObject(t *testing.T) {
	_, client := startServer(t)
	id := store.ShardID{Object: "", Row: -2}
	if err := client.Put(t.Context(), id, nil); err != nil {
		t.Fatal(err)
	}
	got, err := client.Get(t.Context(), id)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("Get = %v, want empty", got)
	}
}

func TestRemoteNodeDownPropagates(t *testing.T) {
	mem, client := startServer(t)
	mem.SetFailed(true)
	id := store.ShardID{Object: "o", Row: 0}
	if err := client.Put(t.Context(), id, []byte{1}); !errors.Is(err, store.ErrNodeDown) {
		t.Errorf("Put on failed node: err = %v, want ErrNodeDown", err)
	}
	if client.Available(t.Context()) {
		t.Error("Available = true for failed backing node")
	}
	mem.SetFailed(false)
	if !client.Available(t.Context()) {
		t.Error("Available = false after heal")
	}
}

func TestRemoteStats(t *testing.T) {
	mem, client := startServer(t)
	id := store.ShardID{Object: "o", Row: 0}
	if err := client.Put(t.Context(), id, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get(t.Context(), id); err != nil {
		t.Fatal(err)
	}
	got := client.Stats()
	if got.Reads != 1 || got.Writes != 1 || got.BytesWritten != 2 {
		t.Errorf("Stats = %+v", got)
	}
	client.ResetStats()
	if mem.Stats() != (store.NodeStats{}) {
		t.Error("ResetStats did not reach the backing node")
	}
}

// corruptOneShardFile flips a byte in the first shard file of a disk node.
func corruptOneShardFile(t *testing.T, disk *store.DiskNode) {
	t.Helper()
	files, err := disk.ShardFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no shard files to corrupt")
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0x80
	if err := os.WriteFile(files[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteCorruptShardPropagates(t *testing.T) {
	// End to end over the wire: a disk-backed server whose shard file rots
	// must answer Get with the corrupt status, and the client must surface
	// it as store.ErrCorrupt (not ErrNotFound, not a generic error).
	disk, err := store.NewDiskNode("backing", t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(disk)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := NewRemoteNode("remote", addr.String(), WithTimeout(2*time.Second))
	t.Cleanup(func() { _ = client.Close() })

	id := store.ShardID{Object: "o", Row: 0}
	if err := client.Put(t.Context(), id, []byte("soon to rot")); err != nil {
		t.Fatal(err)
	}
	corruptOneShardFile(t, disk)
	_, err = client.Get(t.Context(), id)
	if !errors.Is(err, store.ErrCorrupt) {
		t.Errorf("Get = %v, want ErrCorrupt", err)
	}
	if errors.Is(err, store.ErrNotFound) || errors.Is(err, store.ErrNodeDown) {
		t.Errorf("corrupt shard misreported: %v", err)
	}
}

func TestStatusCorruptCodec(t *testing.T) {
	if got := statusFor(store.ErrCorrupt); got != statusCorrupt {
		t.Errorf("statusFor(ErrCorrupt) = %d, want %d", got, statusCorrupt)
	}
	err := errorFor(statusCorrupt, []byte("CRC mismatch"), "n0", "get", store.ShardID{Object: "o", Row: 1})
	if !errors.Is(err, store.ErrCorrupt) {
		t.Errorf("errorFor(statusCorrupt) = %v", err)
	}
}

func TestRemoteStatsErr(t *testing.T) {
	mem, client := startServer(t)
	id := store.ShardID{Object: "o", Row: 0}
	if err := client.Put(t.Context(), id, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	stats, err := client.StatsErr(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Writes != 1 || stats.BytesWritten != 3 {
		t.Errorf("StatsErr = %+v", stats)
	}
	_ = mem
}

func TestRemoteStatsErrReportsUnreachable(t *testing.T) {
	srv := NewServer(store.NewMemNode("n"))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := NewRemoteNode("remote", addr.String(), WithTimeout(500*time.Millisecond))
	t.Cleanup(func() { _ = client.Close() })
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.StatsErr(t.Context()); err == nil {
		t.Error("StatsErr against dead server: want error")
	}
	// The legacy interface shim still degrades to zeros.
	if got := client.Stats(); got != (store.NodeStats{}) {
		t.Errorf("Stats against dead server = %+v, want zeros", got)
	}
}

func TestClusterTotalStatsCheckedFlagsDeadRemote(t *testing.T) {
	// Two remote nodes; one server dies. The aggregate must carry the live
	// node's counters and name the unreachable one instead of folding it
	// into silent zeros.
	memA, clientA := startServer(t)
	srvB := NewServer(store.NewMemNode("b"))
	addrB, err := srvB.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	clientB := NewRemoteNode("remote-b", addrB.String(), WithTimeout(500*time.Millisecond))
	t.Cleanup(func() { _ = clientB.Close() })

	c := store.NewCluster([]store.Node{clientA, clientB})
	if err := c.Put(t.Context(), 0, store.ShardID{Object: "o", Row: 0}, []byte{9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := srvB.Close(); err != nil {
		t.Fatal(err)
	}
	total, unreachable := c.TotalStatsChecked(t.Context())
	if total.Writes != 1 || total.BytesWritten != 2 {
		t.Errorf("total = %+v", total)
	}
	if len(unreachable) != 1 || unreachable[0] != "remote-b" {
		t.Errorf("unreachable = %v, want [remote-b]", unreachable)
	}
	_ = memA
}

func TestRemoteConcurrentClients(t *testing.T) {
	_, client := startServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := store.ShardID{Object: "o", Row: g}
			for i := 0; i < 30; i++ {
				want := []byte{byte(g), byte(i)}
				if err := client.Put(context.Background(), id, want); err != nil {
					t.Error(err)
					return
				}
				got, err := client.Get(context.Background(), id)
				if err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(got, want) {
					t.Errorf("goroutine %d: Get = %v, want %v", g, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRemoteReconnectsAfterServerRestart(t *testing.T) {
	mem := store.NewMemNode("backing")
	srv := NewServer(mem)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := NewRemoteNode("remote", addr.String(), WithTimeout(time.Second))
	t.Cleanup(func() { _ = client.Close() })
	id := store.ShardID{Object: "o", Row: 0}
	if err := client.Put(t.Context(), id, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get(t.Context(), id); !errors.Is(err, store.ErrNodeDown) {
		t.Fatalf("Get with server down: err = %v, want ErrNodeDown", err)
	}
	if client.Available(t.Context()) {
		t.Error("Available = true with server down")
	}
	// Restart on the same address; the client must re-dial transparently.
	srv2 := NewServer(mem)
	if _, err := srv2.Listen(addr.String()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv2.Close() })
	got, err := client.Get(t.Context(), id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{1}) {
		t.Error("data mismatch after reconnect")
	}
}

func TestRemoteNodeInCluster(t *testing.T) {
	// A remote node is a drop-in store.Node for Cluster.
	_, client := startServer(t)
	c := store.NewCluster([]store.Node{client})
	id := store.ShardID{Object: "o", Row: 0}
	if err := c.Put(t.Context(), 0, id, []byte{42}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(t.Context(), 0, id)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{42}) {
		t.Error("cluster round trip through remote node failed")
	}
	if !c.Available(t.Context(), 0) {
		t.Error("remote node not available through cluster")
	}
}

func TestServerCloseIdempotentAndRejectsLateListen(t *testing.T) {
	srv := NewServer(store.NewMemNode("n"))
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := srv.Listen("127.0.0.1:0"); err == nil {
		t.Error("Listen after Close: want error")
	}
}

func TestServerRejectsMalformedFrame(t *testing.T) {
	srv := NewServer(store.NewMemNode("n"))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A 1-byte body is too short for any request; the server must answer
	// with a statusError frame rather than crash or hang.
	if err := writeFrame(conn, []byte{opGet}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	body, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	status, _, err := decodeResponse(body)
	if err != nil {
		t.Fatal(err)
	}
	if status != statusError {
		t.Errorf("status = %d, want statusError", status)
	}
}

func TestProtocolRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		req  request
	}{
		{"put with payload", request{op: opPut, id: store.ShardID{Object: "abc", Row: 7}, payload: []byte{1, 2}}},
		{"get", request{op: opGet, id: store.ShardID{Object: "x/y#z", Row: 0}}},
		{"negative row", request{op: opDelete, id: store.ShardID{Object: "n", Row: -5}}},
		{"empty object", request{op: opPing, id: store.ShardID{}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			body, err := encodeRequest(tt.req)
			if err != nil {
				t.Fatal(err)
			}
			got, err := decodeRequest(body)
			if err != nil {
				t.Fatal(err)
			}
			if got.op != tt.req.op || got.id != tt.req.id || !bytes.Equal(got.payload, tt.req.payload) {
				t.Errorf("round trip = %+v, want %+v", got, tt.req)
			}
		})
	}
}

func TestStatsCodec(t *testing.T) {
	want := store.NodeStats{Reads: 1, Writes: 2, Deletes: 3, BytesRead: 1 << 40, BytesWritten: 5}
	got, err := decodeStats(encodeStats(want))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("stats round trip = %+v, want %+v", got, want)
	}
	if _, err := decodeStats([]byte{1, 2, 3}); err == nil {
		t.Error("short stats payload: want error")
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, make([]byte, maxFrame+1)); !errors.Is(err, errFrameTooLarge) {
		t.Errorf("oversized write: err = %v, want errFrameTooLarge", err)
	}
	// A forged oversized header must be rejected on read.
	buf.Reset()
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := readFrame(&buf); !errors.Is(err, errFrameTooLarge) {
		t.Errorf("oversized read: err = %v, want errFrameTooLarge", err)
	}
}
