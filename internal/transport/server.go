package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/secarchive/sec/internal/store"
)

// Server serves a store.Node over TCP. The zero value is not usable; use
// NewServer.
type Server struct {
	node     store.Node
	archive  ArchiveBackend
	logger   *log.Logger
	wrapConn func(net.Conn) net.Conn

	// ops is the base context handed to every node operation; cancelOps
	// aborts in-flight operations when the server is force-closed (Close,
	// or a Shutdown whose drain deadline expired).
	ops       context.Context
	cancelOps context.CancelFunc

	reqs requestCounters

	mu       sync.Mutex
	listener net.Listener
	conns    map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup
}

// RequestStats counts the requests a server has dispatched, by kind. It
// distinguishes per-shard operations from batches so tests and benchmarks
// can assert the wire cost of a workload (e.g. one GetBatches RPC per node
// per retrieval instead of one Gets RPC per shard).
type RequestStats struct {
	Puts, Gets, Deletes, Pings, Stats uint64
	// GetBatches, PutBatches, and DeleteBatches count batch RPCs;
	// GetBatchShards, PutBatchShards, and DeleteBatchShards count the
	// shards they carried.
	GetBatches, PutBatches, DeleteBatches             uint64
	GetBatchShards, PutBatchShards, DeleteBatchShards uint64
	// ArchCreates through ArchRepairs count archive-level gateway RPCs
	// (opArchCreate..opArchRepair), the whole-archive operations a
	// gateway-backed server dispatches to its ArchiveBackend.
	ArchCreates, ArchCommits, ArchGets, ArchGetAlls uint64
	ArchLogs, ArchInfos, ArchCompacts               uint64
	ArchScrubs, ArchRepairs                         uint64
	// BytesRead counts shard payload bytes served to clients (get and
	// get-batch responses, and archive retrieve responses); BytesWritten
	// counts shard payload bytes received from clients (put and put-batch
	// requests, and archive commits). Framing and header bytes are
	// excluded: these are the bytes-on-wire the paper's I/O model prices,
	// so a compressed-delta workload shows up directly as a smaller
	// BytesRead.
	BytesRead, BytesWritten uint64
}

type requestCounters struct {
	puts, gets, deletes, pings, stats     atomic.Uint64
	getBatches, putBatches, deleteBatches atomic.Uint64
	getBatchShards, putBatchShards        atomic.Uint64
	deleteBatchShards                     atomic.Uint64
	archCreates, archCommits, archGets    atomic.Uint64
	archGetAlls, archLogs, archInfos      atomic.Uint64
	archCompacts, archScrubs, archRepairs atomic.Uint64
	bytesRead, bytesWritten               atomic.Uint64
}

// RequestStats returns a snapshot of the server's request counters.
func (s *Server) RequestStats() RequestStats {
	return RequestStats{
		Puts:              s.reqs.puts.Load(),
		Gets:              s.reqs.gets.Load(),
		Deletes:           s.reqs.deletes.Load(),
		Pings:             s.reqs.pings.Load(),
		Stats:             s.reqs.stats.Load(),
		GetBatches:        s.reqs.getBatches.Load(),
		PutBatches:        s.reqs.putBatches.Load(),
		DeleteBatches:     s.reqs.deleteBatches.Load(),
		GetBatchShards:    s.reqs.getBatchShards.Load(),
		PutBatchShards:    s.reqs.putBatchShards.Load(),
		DeleteBatchShards: s.reqs.deleteBatchShards.Load(),
		ArchCreates:       s.reqs.archCreates.Load(),
		ArchCommits:       s.reqs.archCommits.Load(),
		ArchGets:          s.reqs.archGets.Load(),
		ArchGetAlls:       s.reqs.archGetAlls.Load(),
		ArchLogs:          s.reqs.archLogs.Load(),
		ArchInfos:         s.reqs.archInfos.Load(),
		ArchCompacts:      s.reqs.archCompacts.Load(),
		ArchScrubs:        s.reqs.archScrubs.Load(),
		ArchRepairs:       s.reqs.archRepairs.Load(),
		BytesRead:         s.reqs.bytesRead.Load(),
		BytesWritten:      s.reqs.bytesWritten.Load(),
	}
}

// ConnCount returns the number of client connections the server is
// currently holding. It exists for connection-leak checks: after every
// client of a test fixture has closed, the count must drain to zero.
func (s *Server) ConnCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// maxResponseChunk is the largest response payload sent in one frame
// (frame body = status byte + payload); longer payloads continue across
// statusPartial frames. A variable so tests can force splitting without
// 64 MiB payloads.
var maxResponseChunk = maxFrame - 1

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithLogger directs server diagnostics to the given logger instead of
// discarding them.
func WithLogger(l *log.Logger) ServerOption {
	return func(s *Server) { s.logger = l }
}

// WithConnWrapper installs a hook that decorates every accepted
// connection before it is served. It exists for transport-level fault
// injection (see faults.ConnChaos: per-read latency, connection resets),
// so chaos drills can perturb the wire itself and not just the node
// behind it. The wrapper must pass Close and deadline calls through to
// the underlying connection.
func WithConnWrapper(wrap func(net.Conn) net.Conn) ServerOption {
	return func(s *Server) { s.wrapConn = wrap }
}

// WithArchiveBackend installs a backend for the archive-level ops
// (opArchCreate..opArchRepair), turning the server into a gateway
// endpoint. A server without a backend answers those ops with
// statusError, which clients surface as ErrNotServed.
func WithArchiveBackend(b ArchiveBackend) ServerOption {
	return func(s *Server) { s.archive = b }
}

// errServerClosed rejects Listen on a server already shut down.
var errServerClosed = errors.New("transport: server already closed")

// NewServer returns a server exposing the given node. A nil node is
// allowed for gateway-only servers (WithArchiveBackend): shard ops then
// answer statusError, while ping answers statusOK so liveness probes
// reflect the server, not a node it does not have.
func NewServer(node store.Node, opts ...ServerOption) *Server {
	s := &Server{node: node, conns: make(map[net.Conn]struct{})}
	// The ops context is the server-owned root for in-flight request
	// handling; it is detached from any caller on purpose (the server's
	// lifetime, not a request's, bounds it) and cancelled by Close.
	//lint:allow ctxcheck server-owned lifecycle root, cancelled by Close; no caller context exists here
	s.ops, s.cancelOps = context.WithCancel(context.Background())
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts serving
// in background goroutines. It returns the bound address.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		_ = ln.Close()
		return nil, errServerClosed
	}
	s.listener = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		if s.wrapConn != nil {
			conn = s.wrapConn(conn)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		body, err := readFrame(r)
		if err != nil {
			return // EOF, broken peer, or drain deadline: drop the connection
		}
		status, payload := s.handle(s.ops, body)
		// A logical response larger than one frame (a get batch whose
		// shards together exceed maxFrame) is split across continuation
		// frames; the terminal frame carries the real status.
		for len(payload) > maxResponseChunk {
			if err := writeFrame(w, encodeResponse(statusPartial, payload[:maxResponseChunk])); err != nil {
				return
			}
			payload = payload[maxResponseChunk:]
		}
		if err := writeFrame(w, encodeResponse(status, payload)); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) handle(ctx context.Context, body []byte) (status byte, payload []byte) {
	req, err := decodeRequest(body)
	if err != nil {
		return statusError, []byte(err.Error())
	}
	if req.op >= opArchCreate && req.op <= opArchRepair {
		return s.handleArchive(ctx, req)
	}
	if s.node == nil && req.op != opPing {
		return statusError, []byte("transport: no storage node served")
	}
	switch req.op {
	case opPut:
		s.reqs.puts.Add(1)
		s.reqs.bytesWritten.Add(uint64(len(req.payload)))
		err := s.node.Put(ctx, req.id, req.payload)
		return s.report(err), encodeWireError(err)
	case opGet:
		s.reqs.gets.Add(1)
		data, err := s.node.Get(ctx, req.id)
		if err != nil {
			return s.report(err), encodeWireError(err)
		}
		s.reqs.bytesRead.Add(uint64(len(data)))
		return statusOK, data
	case opDelete:
		s.reqs.deletes.Add(1)
		err := s.node.Delete(ctx, req.id)
		return s.report(err), encodeWireError(err)
	case opPing:
		s.reqs.pings.Add(1)
		if s.node != nil && !s.node.Available(ctx) {
			return statusNodeDown, nil
		}
		return statusOK, nil
	case opStats:
		s.reqs.stats.Add(1)
		return statusOK, encodeStats(s.node.Stats())
	case opResetStats:
		s.node.ResetStats()
		return statusOK, nil
	case opGetBatch:
		ids, err := decodeGetBatch(req.payload)
		if err != nil {
			return statusError, []byte(err.Error())
		}
		s.reqs.getBatches.Add(1)
		s.reqs.getBatchShards.Add(uint64(len(ids)))
		results := store.GetShards(ctx, s.node, ids)
		for _, res := range results {
			if res.Err == nil {
				s.reqs.bytesRead.Add(uint64(len(res.Data)))
			}
		}
		return statusOK, encodeBatchResults(results)
	case opPutBatch:
		ids, data, err := decodePutBatch(req.payload)
		if err != nil {
			return statusError, []byte(err.Error())
		}
		s.reqs.putBatches.Add(1)
		s.reqs.putBatchShards.Add(uint64(len(ids)))
		for _, d := range data {
			s.reqs.bytesWritten.Add(uint64(len(d)))
		}
		results := make([]store.ShardResult, len(ids))
		for i, err := range store.PutShards(ctx, s.node, ids, data) {
			results[i] = store.ShardResult{Err: err}
		}
		return statusOK, encodeBatchResults(results)
	case opDeleteBatch:
		ids, err := decodeDeleteBatch(req.payload)
		if err != nil {
			return statusError, []byte(err.Error())
		}
		s.reqs.deleteBatches.Add(1)
		s.reqs.deleteBatchShards.Add(uint64(len(ids)))
		results := make([]store.ShardResult, len(ids))
		for i, err := range store.DeleteShards(ctx, s.node, ids) {
			results[i] = store.ShardResult{Err: err}
		}
		return statusOK, encodeBatchResults(results)
	default:
		return statusError, []byte(fmt.Sprintf("transport: unknown op %d", req.op))
	}
}

func (s *Server) report(err error) byte {
	status := statusFor(err)
	if status == statusError && s.logger != nil {
		s.logger.Printf("transport: node error: %v", err)
	}
	return status
}

// beginClose marks the server closed and returns the listener and a
// snapshot of the active connections, or ok=false when it was already
// closed.
func (s *Server) beginClose() (ln net.Listener, conns []net.Conn, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, nil, false
	}
	s.closed = true
	ln = s.listener
	for c := range s.conns {
		conns = append(conns, c)
	}
	return ln, conns, true
}

// connSnapshot returns the connections still being served.
func (s *Server) connSnapshot() []net.Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	return conns
}

// Close stops accepting connections, cancels in-flight node operations,
// closes active connections, and waits for the handler goroutines to exit.
// It is idempotent. Use Shutdown to drain in-flight requests instead of
// aborting them.
func (s *Server) Close() error {
	ln, conns, ok := s.beginClose()
	if !ok {
		s.wg.Wait()
		return nil
	}
	var err error
	if ln != nil {
		err = ln.Close()
	}
	s.cancelOps()
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

// Shutdown gracefully stops the server: it stops accepting connections,
// lets every request already in flight finish and flush its response, and
// closes each connection once it goes idle. If the context expires before
// the drain completes, the remaining operations are cancelled and their
// connections force-closed, and the context's error is returned. Like
// Close, it is idempotent (a concurrent or prior Close/Shutdown wins).
func (s *Server) Shutdown(ctx context.Context) error {
	ln, conns, ok := s.beginClose()
	if !ok {
		s.wg.Wait()
		return nil
	}
	var err error
	if ln != nil {
		err = ln.Close()
	}
	// Poison reads on every open connection: an idle conn fails its next
	// readFrame immediately and closes; a conn mid-request finishes the
	// request, writes the response, and then fails the next read. Requests
	// never block on the read deadline - only the wait between them does.
	for _, c := range conns {
		_ = c.SetReadDeadline(time.Unix(1, 0))
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return err
	case <-ctx.Done():
		s.cancelOps()
		for _, c := range s.connSnapshot() {
			_ = c.Close()
		}
		<-done
		return ctx.Err()
	}
}
