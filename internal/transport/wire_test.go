package transport

import (
	"testing"
	"time"

	"github.com/secarchive/sec/internal/store"
)

// TestServerCountsPayloadBytes pins the server-side byte accounting:
// BytesWritten totals shard payloads received over put and put-batch,
// BytesRead totals shard payloads served over get and get-batch, and
// framing overhead is excluded (the counts are exactly the payload sizes).
func TestServerCountsPayloadBytes(t *testing.T) {
	mem := store.NewMemNode("backing")
	srv := NewServer(mem)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	client := NewRemoteNode("remote-0", addr.String(), WithTimeout(2*time.Second))
	t.Cleanup(func() { _ = client.Close() })
	ctx := t.Context()
	id := func(row int) store.ShardID { return store.ShardID{Object: "o", Row: row} }

	if err := client.Put(ctx, id(0), make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if errs := client.PutBatch(ctx, []store.ShardID{id(1), id(2)},
		[][]byte{make([]byte, 30), make([]byte, 20)}); errs[0] != nil || errs[1] != nil {
		t.Fatalf("PutBatch errs = %v", errs)
	}
	stats := srv.RequestStats()
	if stats.BytesWritten != 150 {
		t.Errorf("BytesWritten = %d, want 150", stats.BytesWritten)
	}
	if stats.BytesRead != 0 {
		t.Errorf("BytesRead = %d before any get, want 0", stats.BytesRead)
	}

	if _, err := client.Get(ctx, id(0)); err != nil {
		t.Fatal(err)
	}
	results := client.GetBatch(ctx, []store.ShardID{id(1), id(2)})
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	stats = srv.RequestStats()
	if stats.BytesRead != 150 {
		t.Errorf("BytesRead = %d, want 150", stats.BytesRead)
	}

	// A miss serves no payload: the counter must not move.
	if _, err := client.Get(ctx, id(9)); err == nil {
		t.Fatal("get of absent shard succeeded")
	}
	if got := srv.RequestStats().BytesRead; got != 150 {
		t.Errorf("BytesRead after miss = %d, want 150", got)
	}
}
