package analysis

import (
	"math"
	"testing"
)

func TestTruncatedExponentialProperties(t *testing.T) {
	for _, alpha := range []float64{0.1, 0.6, 1.1, 1.6} {
		pmf, err := TruncatedExponential(alpha, 3)
		if err != nil {
			t.Fatal(err)
		}
		assertPMF(t, pmf)
		// Exponential PMFs concentrate on small gamma.
		if !(pmf[0] > pmf[1] && pmf[1] > pmf[2]) {
			t.Errorf("alpha=%v: PMF %v not decreasing", alpha, pmf)
		}
	}
	// Larger alpha concentrates more mass on gamma=1 (Fig. 6 left).
	lo, err := TruncatedExponential(0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := TruncatedExponential(1.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if hi[0] <= lo[0] {
		t.Errorf("P(1): alpha=1.6 gives %v, alpha=0.1 gives %v; want increase", hi[0], lo[0])
	}
}

func TestTruncatedExponentialValues(t *testing.T) {
	pmf, err := TruncatedExponential(1.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	z := math.Exp(-1.6) + math.Exp(-3.2) + math.Exp(-4.8)
	for g := 1; g <= 3; g++ {
		want := math.Exp(-1.6*float64(g)) / z
		if math.Abs(pmf[g-1]-want) > tol {
			t.Errorf("P(%d) = %v, want %v", g, pmf[g-1], want)
		}
	}
}

func TestTruncatedPoissonProperties(t *testing.T) {
	for _, lambda := range []float64{3, 5, 7, 9} {
		pmf, err := TruncatedPoisson(lambda, 3)
		if err != nil {
			t.Fatal(err)
		}
		assertPMF(t, pmf)
		// Poisson with lambda >= 3 concentrates on large gamma (Fig. 6
		// right): P(3) >= P(2) >= P(1).
		if !(pmf[2] >= pmf[1] && pmf[1] >= pmf[0]) {
			t.Errorf("lambda=%v: PMF %v not increasing", lambda, pmf)
		}
	}
}

func TestTruncatedPoissonValues(t *testing.T) {
	// lambda=3, k=3: masses proportional to 3, 4.5, 4.5.
	pmf, err := TruncatedPoisson(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3.0 / 12, 4.5 / 12, 4.5 / 12}
	for i := range want {
		if math.Abs(pmf[i]-want[i]) > tol {
			t.Errorf("P(%d) = %v, want %v", i+1, pmf[i], want[i])
		}
	}
}

func TestPMFValidation(t *testing.T) {
	if _, err := TruncatedExponential(0, 3); err == nil {
		t.Error("alpha=0: want error")
	}
	if _, err := TruncatedExponential(1, 0); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := TruncatedPoisson(-1, 3); err == nil {
		t.Error("lambda<0: want error")
	}
	if _, err := TruncatedPoisson(3, 0); err == nil {
		t.Error("k=0: want error")
	}
}

func assertPMF(t *testing.T, pmf []float64) {
	t.Helper()
	var sum float64
	for _, v := range pmf {
		if v < 0 || v > 1 {
			t.Fatalf("PMF value %v out of range", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > tol {
		t.Fatalf("PMF sums to %v", sum)
	}
}

func TestExpectedJointReadsPointMasses(t *testing.T) {
	// Paper Section IV-C: with a 1-sparse z2 and k=3, reading both
	// versions costs 5 instead of 6.
	if got := ExpectedJointReads(3, []float64{1, 0, 0}); !close(got, 5) {
		t.Errorf("point mass gamma=1: E = %v, want 5", got)
	}
	// Dense deltas give no savings: E = 2k.
	if got := ExpectedJointReads(3, []float64{0, 0, 1}); !close(got, 6) {
		t.Errorf("point mass gamma=3: E = %v, want 6", got)
	}
}

// TestFig7Bands checks the ranges the paper reports: "reductions between
// 4-13% ... for two versions" with exponential PMFs favourable and Poisson
// unfavourable.
func TestFig7Bands(t *testing.T) {
	// k=3: reduction = P(1)/6*100.
	tests := []struct {
		name   string
		pmf    func() ([]float64, error)
		lo, hi float64
	}{
		{"exp alpha=1.6", func() ([]float64, error) { return TruncatedExponential(1.6, 3) }, 13, 14},
		{"exp alpha=0.1", func() ([]float64, error) { return TruncatedExponential(0.1, 3) }, 5.5, 6.5},
		{"poisson lambda=3", func() ([]float64, error) { return TruncatedPoisson(3, 3) }, 4, 4.5},
		{"poisson lambda=9", func() ([]float64, error) { return TruncatedPoisson(9, 3) }, 0.5, 1.2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pmf, err := tt.pmf()
			if err != nil {
				t.Fatal(err)
			}
			got := PercentReductionJoint(3, pmf)
			if got < tt.lo || got > tt.hi {
				t.Errorf("reduction = %v%%, want within [%v,%v] (paper Fig. 7)", got, tt.lo, tt.hi)
			}
		})
	}
}

// TestFig8OptimizedBeatsBasic checks the Fig. 8 relationship: optimized SEC
// pays strictly less excess I/O for the second version than basic SEC, and
// both pay more than the non-differential baseline (increase > 0).
func TestFig8OptimizedBeatsBasic(t *testing.T) {
	for _, alpha := range []float64{0.1, 0.6, 1.1, 1.6} {
		pmf, err := TruncatedExponential(alpha, 3)
		if err != nil {
			t.Fatal(err)
		}
		basic := PercentIncreaseSecond(3, pmf, false)
		opt := PercentIncreaseSecond(3, pmf, true)
		if opt >= basic {
			t.Errorf("alpha=%v: optimized %v%% >= basic %v%%", alpha, opt, basic)
		}
		if opt <= 0 || basic <= 0 {
			t.Errorf("alpha=%v: increases must be positive, got %v and %v", alpha, opt, basic)
		}
	}
	// Closed-form spot check for k=3: basic = 100 - (100/3)P(1),
	// optimized = (200/3)P(1).
	pmf, err := TruncatedExponential(1.6, 3)
	if err != nil {
		t.Fatal(err)
	}
	p1 := pmf[0]
	if got, want := PercentIncreaseSecond(3, pmf, false), 100-100.0/3*p1; math.Abs(got-want) > 1e-9 {
		t.Errorf("basic increase = %v, want %v", got, want)
	}
	if got, want := PercentIncreaseSecond(3, pmf, true), 200.0/3*p1; math.Abs(got-want) > 1e-9 {
		t.Errorf("optimized increase = %v, want %v", got, want)
	}
}

func TestExpectedArchiveReads(t *testing.T) {
	// Point mass on gamma=1, k=3: each delta costs 2 reads, so the
	// L-version archive costs 3 + 2(L-1).
	pmf := []float64{1, 0, 0}
	for _, l := range []int{1, 2, 5, 10} {
		want := float64(3 + 2*(l-1))
		if got := ExpectedArchiveReads(3, pmf, l); !close(got, want) {
			t.Errorf("L=%d: E = %v, want %v", l, got, want)
		}
	}
	// Reduction grows with L toward the per-delta saving of 1/3.
	var prev float64 = -1
	for _, l := range []int{2, 3, 5, 10, 50} {
		got := PercentReductionArchive(3, pmf, l)
		if got <= prev {
			t.Errorf("L=%d: reduction %v not increasing", l, got)
		}
		if got >= 100.0/3 {
			t.Errorf("L=%d: reduction %v above the per-delta bound", l, got)
		}
		prev = got
	}
	// Consistency with the two-version formula.
	if a, b := PercentReductionArchive(3, pmf, 2), PercentReductionJoint(3, pmf); !close(a, b) {
		t.Errorf("L=2 archive reduction %v != joint reduction %v", a, b)
	}
}

func TestExpectedSecondVersionReadsLargerK(t *testing.T) {
	// k=10, point mass gamma=3: optimized stores the delta (2*3 < 10), so
	// x2 costs k + 2*gamma = 16 either way; point mass gamma=8 stores the
	// full version: optimized costs k, basic costs k + min(16,10) = 20.
	pmfSparse := make([]float64, 10)
	pmfSparse[2] = 1
	if got := ExpectedSecondVersionReads(10, pmfSparse, true); !close(got, 16) {
		t.Errorf("optimized gamma=3: %v, want 16", got)
	}
	pmfDense := make([]float64, 10)
	pmfDense[7] = 1
	if got := ExpectedSecondVersionReads(10, pmfDense, true); !close(got, 10) {
		t.Errorf("optimized gamma=8: %v, want 10", got)
	}
	if got := ExpectedSecondVersionReads(10, pmfDense, false); !close(got, 20) {
		t.Errorf("basic gamma=8: %v, want 20", got)
	}
}
