package analysis

import (
	"fmt"
	"math"

	"github.com/secarchive/sec/internal/erasure"
)

// ArchiveLossColocated returns the exact probability that a colocated
// archive {x_1, z_2, ..., z_L} is not fully recoverable, when the full
// version uses the `full` code on nodes 0..n-1 and the deltas use the
// (possibly punctured) `deltaCode` on nodes 0..deltaCode.N()-1 of the same
// group. gammas holds the delta sparsity levels.
//
// With an unpunctured delta code this reduces to Prob(E_1) (the paper's
// eq. 13: any k live nodes recover everything); puncturing trades that
// resilience for storage, the trade-off the paper flags as future work.
func ArchiveLossColocated(full, deltaCode *erasure.Code, gammas []int, p float64) (float64, error) {
	if deltaCode.N() > full.N() {
		return 0, fmt.Errorf("analysis: delta code spans %d nodes, group has %d", deltaCode.N(), full.N())
	}
	if deltaCode.K() != full.K() {
		return 0, fmt.Errorf("analysis: dimension mismatch: %d vs %d", deltaCode.K(), full.K())
	}
	lost := 0.0
	forEachFailurePattern(full.N(), func(live []int, dead int) {
		if archiveRecoverable(full, deltaCode, gammas, live) {
			return
		}
		lost += math.Pow(p, float64(dead)) * math.Pow(1-p, float64(len(live)))
	})
	return lost, nil
}

func archiveRecoverable(full, deltaCode *erasure.Code, gammas []int, live []int) bool {
	if len(live) < full.K() {
		return false // x_1 is lost
	}
	// Deltas only live on the first deltaCode.N() rows of the group.
	deltaLive := live[:0:0]
	for _, r := range live {
		if r < deltaCode.N() {
			deltaLive = append(deltaLive, r)
		}
	}
	for _, gamma := range gammas {
		if !deltaRecoverable(deltaCode, deltaLive, gamma) {
			return false
		}
	}
	return true
}

// DeltaStorageOverhead returns the storage overhead (stored symbols per
// data symbol) of a delta codeword under the given puncturing.
func DeltaStorageOverhead(n, k, punctured int) float64 {
	return float64(n-punctured) / float64(k)
}
