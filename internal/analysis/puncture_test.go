package analysis

import (
	"math"
	"testing"

	"github.com/secarchive/sec/internal/erasure"
)

func TestArchiveLossColocatedUnpuncturedEqualsEq13(t *testing.T) {
	// Without puncturing, the colocated archive is lost exactly when
	// fewer than k nodes survive (the paper's eq. 13), for any delta
	// sparsity pattern.
	full := code63(t, erasure.NonSystematicCauchy)
	for _, gammas := range [][]int{{1}, {1, 2}, {3}, {}} {
		for _, p := range []float64{0.05, 0.1, 0.2} {
			got, err := ArchiveLossColocated(full, full, gammas, p)
			if err != nil {
				t.Fatal(err)
			}
			want := ProbLoseFull(6, 3, p)
			if math.Abs(got-want) > tol {
				t.Errorf("gammas=%v p=%v: loss %v, want Prob(E1) %v", gammas, p, got, want)
			}
		}
	}
}

func TestArchiveLossColocatedPuncturedOneIsFree(t *testing.T) {
	// The puncture experiment's headline: dropping one of six delta
	// shards leaves the archive loss unchanged for gamma=1, because any
	// >=k-live pattern keeps >=2 of the first five rows alive.
	full := code63(t, erasure.NonSystematicCauchy)
	p1, err := full.Punctured(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []float64{0.05, 0.1, 0.2} {
		got, err := ArchiveLossColocated(full, p1, []int{1}, p)
		if err != nil {
			t.Fatal(err)
		}
		want := ProbLoseFull(6, 3, p)
		if math.Abs(got-want) > tol {
			t.Errorf("p=%v: loss %v, want %v (puncturing 1 shard must be free)", p, got, want)
		}
	}
	// Puncturing two shards is NOT free.
	p2, err := full.Punctured(2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ArchiveLossColocated(full, p2, []int{1}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got <= ProbLoseFull(6, 3, 0.1) {
		t.Errorf("t=2 loss %v not above baseline", got)
	}
}

func TestArchiveLossColocatedValidation(t *testing.T) {
	full := code63(t, erasure.NonSystematicCauchy)
	bigger, err := erasure.New(erasure.NonSystematicCauchy, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ArchiveLossColocated(full, bigger, []int{1}, 0.1); err == nil {
		t.Error("delta code wider than group: want error")
	}
	otherK, err := erasure.New(erasure.NonSystematicCauchy, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ArchiveLossColocated(full, otherK, []int{1}, 0.1); err == nil {
		t.Error("dimension mismatch: want error")
	}
}

func TestDeltaStorageOverhead(t *testing.T) {
	if got := DeltaStorageOverhead(6, 3, 0); got != 2 {
		t.Errorf("unpunctured overhead = %v, want 2", got)
	}
	if got := DeltaStorageOverhead(6, 3, 2); math.Abs(got-4.0/3) > tol {
		t.Errorf("t=2 overhead = %v, want 4/3", got)
	}
}
