package analysis

import (
	"math"
	"testing"

	"github.com/secarchive/sec/internal/erasure"
)

const tol = 1e-12

func close(a, b float64) bool { return math.Abs(a-b) <= tol }

func code63(t *testing.T, kind erasure.Kind) *erasure.Code {
	t.Helper()
	c, err := erasure.New(kind, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// eq17 is the paper's closed form for Prob(E_1) with (n,k) = (6,3).
func eq17(p float64) float64 {
	q := 1 - p
	return math.Pow(p, 6) + 6*math.Pow(p, 5)*q + 15*math.Pow(p, 4)*q*q
}

// eq18 is the paper's Prob_N(E_2) for the 1-sparse delta.
func eq18(p float64) float64 {
	return math.Pow(p, 6) + 6*math.Pow(p, 5)*(1-p)
}

// eq20 is the paper's Prob_S(E_2): 12 of the 15 two-live patterns lose the
// delta under systematic SEC.
func eq20(p float64) float64 {
	q := 1 - p
	return math.Pow(p, 6) + 6*math.Pow(p, 5)*q + 12*math.Pow(p, 4)*q*q
}

func pGrid() []float64 {
	grid := make([]float64, 0, 20)
	for p := 0.01; p <= 0.2001; p += 0.01 {
		grid = append(grid, p)
	}
	return grid
}

func TestProbLoseFullMatchesEq17(t *testing.T) {
	for _, p := range pGrid() {
		if got, want := ProbLoseFull(6, 3, p), eq17(p); !close(got, want) {
			t.Errorf("p=%v: ProbLoseFull = %v, want %v", p, got, want)
		}
	}
}

func TestProbLoseFullEdgeCases(t *testing.T) {
	if got := ProbLoseFull(6, 3, 0); got != 0 {
		t.Errorf("p=0: %v, want 0", got)
	}
	if got := ProbLoseFull(6, 3, 1); !close(got, 1) {
		t.Errorf("p=1: %v, want 1", got)
	}
}

func TestProbLoseDeltaNonSystematicMatchesEq18(t *testing.T) {
	for _, p := range pGrid() {
		if got, want := ProbLoseDeltaNonSystematic(6, 3, 1, p), eq18(p); !close(got, want) {
			t.Errorf("p=%v: got %v, want %v", p, got, want)
		}
	}
}

func TestProbLoseDeltaNonSystematicDenseEqualsFull(t *testing.T) {
	// gamma >= k/2 gives upsilon = k: the delta is as exposed as a full
	// object.
	for _, p := range pGrid() {
		if got, want := ProbLoseDeltaNonSystematic(6, 3, 2, p), ProbLoseFull(6, 3, p); !close(got, want) {
			t.Errorf("p=%v: got %v, want %v", p, got, want)
		}
	}
}

// TestProbLoseDeltaExactMatchesPaperClosedForms is the Fig. 2 check: exact
// pattern enumeration must reproduce eqs. 18 and 20.
func TestProbLoseDeltaExactMatchesPaperClosedForms(t *testing.T) {
	gn := code63(t, erasure.NonSystematicCauchy)
	gs := code63(t, erasure.SystematicCauchy)
	for _, p := range pGrid() {
		if got, want := ProbLoseDelta(gn, 1, p), eq18(p); !close(got, want) {
			t.Errorf("non-systematic p=%v: got %v, want eq18 %v", p, got, want)
		}
		if got, want := ProbLoseDelta(gs, 1, p), eq20(p); !close(got, want) {
			t.Errorf("systematic p=%v: got %v, want eq20 %v", p, got, want)
		}
		// Eq. 10: systematic loses at least as often as non-systematic.
		if ProbLoseDelta(gs, 1, p) < ProbLoseDelta(gn, 1, p)-tol {
			t.Errorf("p=%v: systematic safer than non-systematic", p)
		}
	}
}

// TestCensusMatchesPaperSectionVA reproduces the failure-pattern counts: 63
// patterns, 41 MDS-recoverable, +15 sparse for non-systematic (56 total),
// +3 for systematic (44 total).
func TestCensusMatchesPaperSectionVA(t *testing.T) {
	gn := code63(t, erasure.NonSystematicCauchy)
	census := CensusFor(gn, 1)
	want := PatternCensus{Total: 63, MDSRecoverable: 41, SparseOnly: 15, Unrecoverable: 7}
	if census != want {
		t.Errorf("non-systematic census = %+v, want %+v", census, want)
	}
	gs := code63(t, erasure.SystematicCauchy)
	census = CensusFor(gs, 1)
	want = PatternCensus{Total: 63, MDSRecoverable: 41, SparseOnly: 3, Unrecoverable: 19}
	if census != want {
		t.Errorf("systematic census = %+v, want %+v", census, want)
	}
	if got := 41 + 15; got != 56 {
		t.Errorf("non-systematic recoverable total = %d, want 56", got)
	}
	if got := 41 + 3; got != 44 {
		t.Errorf("systematic recoverable total = %d, want 44", got)
	}
}

func TestCensusZeroGamma(t *testing.T) {
	gn := code63(t, erasure.NonSystematicCauchy)
	census := CensusFor(gn, 0)
	if census.Unrecoverable != 0 {
		t.Errorf("zero-sparse delta can never be lost, census = %+v", census)
	}
}

func TestForEachFailurePatternGuards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("n=31 enumeration did not panic")
		}
	}()
	forEachFailurePattern(31, func([]int, int) {})
}

func TestColocatedVsDispersed(t *testing.T) {
	gn := code63(t, erasure.NonSystematicCauchy)
	gs := code63(t, erasure.SystematicCauchy)
	objects := ArchiveObjects([]int{1}) // {x1, z2} with gamma=1
	for _, p := range pGrid() {
		colo := ColocatedAvailability(6, 3, p)
		dispN := DispersedAvailability(gn, objects, p)
		dispS := DispersedAvailability(gs, objects, p)
		dispND := DispersedAvailability(gn, NonDifferentialObjects(2), p)
		// Paper ordering: colocated dominates; dispersed non-systematic
		// SEC dominates dispersed systematic SEC dominates dispersed
		// non-differential.
		if colo < dispN-tol {
			t.Errorf("p=%v: colocated %v < dispersed %v", p, colo, dispN)
		}
		if dispN < dispS-tol {
			t.Errorf("p=%v: dispersed non-sys %v < sys %v", p, dispN, dispS)
		}
		if dispS < dispND-tol {
			t.Errorf("p=%v: dispersed sys %v < non-diff %v", p, dispS, dispND)
		}
		// Eq. 11 for the non-systematic case has a closed form.
		want := (1 - eq17(p)) * (1 - eq18(p))
		if !close(dispN, want) {
			t.Errorf("p=%v: dispersed non-sys = %v, want %v", p, dispN, want)
		}
		// Eq. 14: the baseline squares the per-version survival.
		if want := math.Pow(1-eq17(p), 2); !close(dispND, want) {
			t.Errorf("p=%v: dispersed non-diff = %v, want %v", p, dispND, want)
		}
	}
}

func TestArchiveObjectShapes(t *testing.T) {
	objects := ArchiveObjects([]int{3, 8})
	if len(objects) != 3 || objects[0].Delta || !objects[1].Delta || objects[2].Gamma != 8 {
		t.Errorf("ArchiveObjects = %+v", objects)
	}
	nd := NonDifferentialObjects(4)
	if len(nd) != 4 || nd[0].Delta {
		t.Errorf("NonDifferentialObjects = %+v", nd)
	}
}

func TestNines(t *testing.T) {
	if got := Nines(0.999); !close(got, 3) {
		t.Errorf("Nines(0.999) = %v, want 3", got)
	}
	if got := Nines(0.99999); math.Abs(got-5) > 1e-9 {
		t.Errorf("Nines(0.99999) = %v, want 5", got)
	}
	if got := Nines(1); !math.IsInf(got, 1) {
		t.Errorf("Nines(1) = %v, want +Inf", got)
	}
}
