package analysis

import (
	"math"
	"math/rand"
	"testing"

	"github.com/secarchive/sec/internal/erasure"
)

func TestAvgSparseIONonSystematicIsConstant(t *testing.T) {
	// Fig. 4, lower curve: every live pair recovers the 1-sparse delta
	// under non-systematic SEC, so mu_1 = 2 for all p.
	gn := code63(t, erasure.NonSystematicCauchy)
	for _, p := range pGrid() {
		if got := AvgSparseIOExact(gn, 1, p); !close(got, 2) {
			t.Errorf("p=%v: mu_1 = %v, want 2", p, got)
		}
	}
}

// mu1Systematic63 is the closed form the paper derives for the systematic
// (6,3) example: mu_1 = 2*p_2 + 3*p_3 where p_2 is the conditional
// probability that at least 2 parity nodes are alive given >= 3 nodes are
// alive.
func mu1Systematic63(p float64) float64 {
	q := 1 - p
	var condProb, reads float64
	// Enumerate (live systematic count s, live parity count r).
	for s := 0; s <= 3; s++ {
		for r := 0; r <= 3; r++ {
			if s+r < 3 {
				continue
			}
			prob := binomialPMF(3, s, q) * binomialPMF(3, r, q)
			condProb += prob
			if r >= 2 {
				reads += prob * 2
			} else {
				reads += prob * 3
			}
		}
	}
	return reads / condProb
}

func TestAvgSparseIOSystematicMatchesClosedForm(t *testing.T) {
	gs := code63(t, erasure.SystematicCauchy)
	for _, p := range pGrid() {
		got := AvgSparseIOExact(gs, 1, p)
		want := mu1Systematic63(p)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("p=%v: mu_1 = %v, want %v", p, got, want)
		}
		// Fig. 4 shape: between the non-systematic 2 and the full 3,
		// increasing in p.
		if got < 2-tol || got > 3+tol {
			t.Errorf("p=%v: mu_1 = %v outside [2,3]", p, got)
		}
	}
	if AvgSparseIOExact(gs, 1, 0.01) >= AvgSparseIOExact(gs, 1, 0.2) {
		t.Error("systematic mu_1 must grow with p")
	}
}

func TestAvgSparseIOFig5Shapes(t *testing.T) {
	// (10,5) code: gamma=1 stays near 2 even at p=0.2; gamma=2 shows a
	// marginal increase (paper Fig. 5).
	gs, err := erasure.New(erasure.SystematicCauchy, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	mu1 := AvgSparseIOExact(gs, 1, 0.2)
	if mu1 < 2 || mu1 > 2.2 {
		t.Errorf("gamma=1 p=0.2: mu = %v, want close to 2", mu1)
	}
	mu2 := AvgSparseIOExact(gs, 2, 0.2)
	if mu2 < 4 || mu2 > 4.5 {
		t.Errorf("gamma=2 p=0.2: mu = %v, want marginally above 4", mu2)
	}
	gn, err := erasure.New(erasure.NonSystematicCauchy, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, gamma := range []int{1, 2} {
		if got := AvgSparseIOExact(gn, gamma, 0.2); !close(got, float64(2*gamma)) {
			t.Errorf("non-systematic gamma=%d: mu = %v, want %d", gamma, got, 2*gamma)
		}
	}
}

func TestAvgSparseIOMonteCarloAgreesWithExact(t *testing.T) {
	gs := code63(t, erasure.SystematicCauchy)
	rng := rand.New(rand.NewSource(61))
	for _, p := range []float64{0.05, 0.1, 0.2} {
		exact := AvgSparseIOExact(gs, 1, p)
		mc := AvgSparseIOMonteCarlo(gs, 1, p, 200000, rng)
		if math.Abs(exact-mc) > 0.01 {
			t.Errorf("p=%v: exact %v vs Monte Carlo %v", p, exact, mc)
		}
	}
}

func TestAvgSparseIOMonteCarloDegenerate(t *testing.T) {
	gs := code63(t, erasure.SystematicCauchy)
	rng := rand.New(rand.NewSource(62))
	// p=1 kills everything: no pattern is retrievable.
	if got := AvgSparseIOMonteCarlo(gs, 1, 1.0, 1000, rng); got != 0 {
		t.Errorf("p=1: got %v, want 0", got)
	}
	if got := AvgSparseIOExact(gs, 1, 1.0); got != 0 {
		t.Errorf("exact p=1: got %v, want 0", got)
	}
}
