package analysis

import (
	"fmt"
	"math"
)

// TruncatedExponential returns the PMF P(gamma) = c*exp(-alpha*gamma) on
// support {1, ..., k} (eq. 22). Small alpha spreads mass; large alpha
// concentrates it on gamma = 1, the regime most favourable to SEC.
func TruncatedExponential(alpha float64, k int) ([]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("analysis: PMF support size %d must be positive", k)
	}
	if alpha <= 0 {
		return nil, fmt.Errorf("analysis: exponential parameter %v must be positive", alpha)
	}
	pmf := make([]float64, k)
	for g := 1; g <= k; g++ {
		pmf[g-1] = math.Exp(-alpha * float64(g))
	}
	normalize(pmf)
	return pmf, nil
}

// TruncatedPoisson returns the PMF P(gamma) = c*lambda^gamma*exp(-lambda)/gamma!
// on support {1, ..., k} (eq. 23). Large lambda pushes mass toward dense
// deltas, the regime least favourable to SEC.
func TruncatedPoisson(lambda float64, k int) ([]float64, error) {
	if k < 1 {
		return nil, fmt.Errorf("analysis: PMF support size %d must be positive", k)
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("analysis: Poisson parameter %v must be positive", lambda)
	}
	pmf := make([]float64, k)
	term := math.Exp(-lambda)
	for g := 1; g <= k; g++ {
		term *= lambda / float64(g) // lambda^g * e^-lambda / g!
		pmf[g-1] = term
	}
	normalize(pmf)
	return pmf, nil
}

func normalize(pmf []float64) {
	var sum float64
	for _, v := range pmf {
		sum += v
	}
	for i := range pmf {
		pmf[i] /= sum
	}
}

// ExpectedJointReads returns E[eta] = k + sum_gamma P(gamma)*min(2*gamma,k):
// the expected reads to retrieve both x_1 and x_2 under basic SEC with the
// given sparsity PMF (Section V-B).
func ExpectedJointReads(k int, pmf []float64) float64 {
	e := float64(k)
	for g1, p := range pmf {
		e += p * float64(min(2*(g1+1), k))
	}
	return e
}

// PercentReductionJoint returns the paper's Fig. 7 metric: the average
// percentage reduction in reads for {x_1, x_2} relative to the
// non-differential baseline's 2k.
func PercentReductionJoint(k int, pmf []float64) float64 {
	return (2*float64(k) - ExpectedJointReads(k, pmf)) / (2 * float64(k)) * 100
}

// ExpectedArchiveReads returns E[eta(x_1..x_L)] under basic SEC when every
// delta's sparsity is i.i.d. from the PMF (formula (4) in expectation):
// k + (L-1)*sum_gamma P(gamma)*min(2*gamma,k).
func ExpectedArchiveReads(k int, pmf []float64, l int) float64 {
	perDelta := ExpectedJointReads(k, pmf) - float64(k)
	return float64(k) + float64(l-1)*perDelta
}

// PercentReductionArchive returns the expected percentage reduction in
// reads for the whole L-version archive relative to the non-differential
// baseline's L*k. As L grows the reduction approaches the per-delta
// saving, generalizing the paper's two-version Fig. 7 and its five-version
// Section V-C example.
func PercentReductionArchive(k int, pmf []float64, l int) float64 {
	baseline := float64(l * k)
	return (baseline - ExpectedArchiveReads(k, pmf, l)) / baseline * 100
}

// ExpectedSecondVersionReads returns E[eta(x_2)]: the expected reads to
// retrieve the second version alone. Under basic SEC the delta must be
// applied over x_1, so the cost equals the joint cost; under optimized SEC
// dense versions are stored in full (t(gamma) = k when 2*gamma >= k, else
// k + 2*gamma).
func ExpectedSecondVersionReads(k int, pmf []float64, optimized bool) float64 {
	if !optimized {
		return ExpectedJointReads(k, pmf)
	}
	var e float64
	for g1, p := range pmf {
		gamma := g1 + 1
		t := float64(k)
		if 2*gamma < k {
			t = float64(k + 2*gamma)
		}
		e += p * t
	}
	return e
}

// PercentIncreaseSecond returns the paper's Fig. 8 metric: the average
// percentage increase in reads for x_2 alone relative to the
// non-differential baseline's k reads.
func PercentIncreaseSecond(k int, pmf []float64, optimized bool) float64 {
	return (ExpectedSecondVersionReads(k, pmf, optimized) - float64(k)) / float64(k) * 100
}
