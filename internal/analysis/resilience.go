// Package analysis implements the paper's evaluation mathematics: static
// resilience of SEC archives under i.i.d. node failures (Section IV),
// average retrieval I/O under failures (Section V-A, eq. 21), and the
// truncated exponential/Poisson sparsity PMFs with their expected-I/O
// consequences (Sections V-B, eqs. 22-23).
//
// Wherever the paper gives a closed form, the package provides it; wherever
// the paper resorts to randomized simulation, the package provides both an
// exact enumeration over all 2^n failure patterns (feasible for the paper's
// code sizes) and a seeded Monte Carlo sampler reproducing the paper's
// methodology.
package analysis

import (
	"fmt"
	"math"

	"github.com/secarchive/sec/internal/erasure"
	"github.com/secarchive/sec/internal/matrix"
)

// ProbLoseFull returns the probability of losing a fully encoded object
// stored on n nodes with an (n,k) MDS code, when each node fails
// independently with probability p: the probability that fewer than k nodes
// survive (the paper's Prob(E_1), eq. 6).
func ProbLoseFull(n, k int, p float64) float64 {
	return probFewerLiveThan(n, k, p)
}

// ProbLoseDeltaNonSystematic returns the probability of losing a
// gamma-sparse delta under non-systematic SEC (eq. 7): any
// upsilon = min(2*gamma, k) live nodes recover it, so it is lost only when
// fewer than upsilon survive.
func ProbLoseDeltaNonSystematic(n, k, gamma int, p float64) float64 {
	upsilon := min(2*gamma, k)
	return probFewerLiveThan(n, upsilon, p)
}

// probFewerLiveThan returns P(#live < threshold) for n i.i.d. nodes with
// failure probability p.
func probFewerLiveThan(n, threshold int, p float64) float64 {
	total := 0.0
	for live := 0; live < threshold; live++ {
		total += binomialPMF(n, live, 1-p)
	}
	return total
}

// binomialPMF returns C(n,j) q^j (1-q)^(n-j).
func binomialPMF(n, j int, q float64) float64 {
	return float64(matrix.CountCombinations(n, j)) * math.Pow(q, float64(j)) * math.Pow(1-q, float64(n-j))
}

// ProbLoseDelta returns the exact probability of losing a gamma-sparse
// delta stored with the given code, by enumerating all 2^n failure
// patterns: the delta survives a pattern iff at least k nodes are live
// (full MDS decode) or some 2*gamma-subset of the live rows satisfies
// Criterion 2 (sparse decode). For the systematic (6,3) example this
// reproduces the paper's eq. 20; for non-systematic codes it matches
// ProbLoseDeltaNonSystematic.
func ProbLoseDelta(code *erasure.Code, gamma int, p float64) float64 {
	lost := 0.0
	forEachFailurePattern(code.N(), func(live []int, dead int) {
		if !deltaRecoverable(code, live, gamma) {
			lost += math.Pow(p, float64(dead)) * math.Pow(1-p, float64(code.N()-dead))
		}
	})
	return lost
}

// deltaRecoverable reports whether a gamma-sparse delta survives with the
// given live rows.
func deltaRecoverable(code *erasure.Code, live []int, gamma int) bool {
	if len(live) >= code.K() {
		return true
	}
	if gamma == 0 {
		return true // nothing stored was needed
	}
	return code.SparseReadRows(live, gamma) != nil
}

// PatternCensus classifies every non-empty failure pattern of the code's n
// nodes by whether a gamma-sparse delta survives it, reproducing the
// Section V-A counts (63 patterns for n=6: 41 MDS-recoverable, plus 15
// sparse-only for non-systematic vs 3 for systematic SEC).
type PatternCensus struct {
	// Total is the number of failure patterns with at least one failed
	// node: 2^n - 1.
	Total int
	// MDSRecoverable counts patterns that keep >= k nodes live.
	MDSRecoverable int
	// SparseOnly counts patterns with < k live nodes where a sparse read
	// still recovers the delta.
	SparseOnly int
	// Unrecoverable counts the rest.
	Unrecoverable int
}

// CensusFor enumerates the failure patterns of the code for a gamma-sparse
// delta.
func CensusFor(code *erasure.Code, gamma int) PatternCensus {
	var census PatternCensus
	forEachFailurePattern(code.N(), func(live []int, dead int) {
		if dead == 0 {
			return
		}
		census.Total++
		switch {
		case len(live) >= code.K():
			census.MDSRecoverable++
		case deltaRecoverable(code, live, gamma):
			census.SparseOnly++
		default:
			census.Unrecoverable++
		}
	})
	return census
}

// forEachFailurePattern visits all 2^n subsets of live nodes.
func forEachFailurePattern(n int, fn func(live []int, dead int)) {
	if n > 30 {
		panic(fmt.Sprintf("analysis: exact enumeration over 2^%d patterns is infeasible", n))
	}
	live := make([]int, 0, n)
	for mask := 0; mask < 1<<n; mask++ {
		live = live[:0]
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				live = append(live, i)
			}
		}
		fn(live, n-len(live))
	}
}

// StoredObject describes one object of an archive for resilience purposes.
type StoredObject struct {
	// Delta marks the object as a gamma-sparse delta rather than a full
	// version.
	Delta bool
	// Gamma is the delta's sparsity (ignored for full objects).
	Gamma int
}

// ArchiveObjects returns the stored-object pattern {x_1, z_2, ..., z_L} of
// a basic SEC archive with the given delta sparsity levels (len = L-1).
func ArchiveObjects(gammas []int) []StoredObject {
	objects := make([]StoredObject, 0, len(gammas)+1)
	objects = append(objects, StoredObject{})
	for _, g := range gammas {
		objects = append(objects, StoredObject{Delta: true, Gamma: g})
	}
	return objects
}

// NonDifferentialObjects returns the stored-object pattern of the baseline:
// l full versions.
func NonDifferentialObjects(l int) []StoredObject {
	return make([]StoredObject, l)
}

// DispersedAvailability returns the probability that every object survives
// when each object's n shards live on a dedicated node group (eq. 11):
// the product of per-object survival probabilities.
func DispersedAvailability(code *erasure.Code, objects []StoredObject, p float64) float64 {
	avail := 1.0
	for _, obj := range objects {
		var lose float64
		if obj.Delta {
			lose = ProbLoseDelta(code, obj.Gamma, p)
		} else {
			lose = ProbLoseFull(code.N(), code.K(), p)
		}
		avail *= 1 - lose
	}
	return avail
}

// ColocatedAvailability returns the probability that the whole archive
// survives under colocated placement (eqs. 13 and 15): any k live nodes
// recover everything, and the full first (or last) version dominates, so
// all schemes coincide at 1 - Prob(E_1).
func ColocatedAvailability(n, k int, p float64) float64 {
	return 1 - ProbLoseFull(n, k, p)
}

// Nines converts an availability probability into the paper's "9s format":
// -log10(1 - availability). Availability 1 maps to +Inf.
func Nines(availability float64) float64 {
	return -math.Log10(1 - availability)
}
