package analysis

import (
	"math"
	"math/rand"
)

// AvgSparseIOExact returns the paper's mu_gamma (eq. 21): the expected
// number of node reads to retrieve a gamma-sparse delta, conditioned on at
// least k nodes being alive (otherwise the object is simply lost). When a
// 2*gamma-subset of the live rows satisfies Criterion 2 the read costs
// 2*gamma; otherwise it falls back to k. Computed by exact enumeration over
// all failure patterns.
//
// For non-systematic Cauchy SEC every live pair works, so the result is
// constantly min(2*gamma, k); systematic SEC degrades as p grows because
// only parity subsets qualify (Figs. 4-5).
func AvgSparseIOExact(code sparseReader, gamma int, p float64) float64 {
	n, k := code.N(), code.K()
	sparseCost, fullCost := float64(2*gamma), float64(k)
	var condProb, reads float64
	forEachFailurePattern(n, func(live []int, dead int) {
		if len(live) < k {
			return
		}
		prob := math.Pow(p, float64(dead)) * math.Pow(1-p, float64(len(live)))
		condProb += prob
		if code.SparseReadRows(live, gamma) != nil {
			reads += prob * sparseCost
		} else {
			reads += prob * fullCost
		}
	})
	if condProb == 0 {
		return 0
	}
	return reads / condProb
}

// AvgSparseIOMonteCarlo estimates mu_gamma by sampling failure patterns,
// reproducing the paper's randomized methodology. Patterns leaving fewer
// than k live nodes are discarded (the estimate conditions on
// retrievability), matching eq. 21.
func AvgSparseIOMonteCarlo(code sparseReader, gamma int, p float64, trials int, rng *rand.Rand) float64 {
	n, k := code.N(), code.K()
	var kept int
	var reads float64
	live := make([]int, 0, n)
	for t := 0; t < trials; t++ {
		live = live[:0]
		for i := 0; i < n; i++ {
			if rng.Float64() >= p {
				live = append(live, i)
			}
		}
		if len(live) < k {
			continue
		}
		kept++
		if code.SparseReadRows(live, gamma) != nil {
			reads += float64(2 * gamma)
		} else {
			reads += float64(k)
		}
	}
	if kept == 0 {
		return 0
	}
	return reads / float64(kept)
}

// sparseReader is the code-planner surface the average-I/O analysis needs.
type sparseReader interface {
	N() int
	K() int
	SparseReadRows(live []int, gamma int) []int
}
