package lint

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeVetConfig materializes a vet config file the way `go vet
// -vettool` would for a single-file, import-free package.
func writeVetConfig(t *testing.T, cfg vetConfig) string {
	t.Helper()
	raw, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "vet.cfg")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunVetTool(t *testing.T) {
	dir := t.TempDir()
	src := `package p

type RetryPolicy struct{ MaxAttempts int }

func enable() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3}
}
`
	file := filepath.Join(dir, "p.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "p.vetx")
	cfgFile := writeVetConfig(t, vetConfig{
		ID:         "p",
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "p",
		GoFiles:    []string{file},
		VetxOutput: vetx,
	})

	var out strings.Builder
	n, err := RunVetTool(cfgFile, All(), &out)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("got %d diagnostics, want 1; output:\n%s", n, out.String())
	}
	if !strings.Contains(out.String(), "retrydefault") {
		t.Errorf("diagnostic should come from retrydefault, got:\n%s", out.String())
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx placeholder was not written: %v", err)
	}
}

func TestRunVetToolVetxOnly(t *testing.T) {
	vetx := filepath.Join(t.TempDir(), "p.vetx")
	cfgFile := writeVetConfig(t, vetConfig{
		ID:         "p",
		Compiler:   "gc",
		ImportPath: "p",
		VetxOnly:   true,
		VetxOutput: vetx,
	})
	var out strings.Builder
	n, err := RunVetTool(cfgFile, All(), &out)
	if err != nil || n != 0 {
		t.Fatalf("VetxOnly unit should analyze nothing, got n=%d err=%v", n, err)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("vetx placeholder was not written: %v", err)
	}
}

func TestRunVetToolTypecheckFailure(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "broken.go")
	if err := os.WriteFile(file, []byte("package p\n\nfunc f() int { return q }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	base := vetConfig{
		ID:         "p",
		Compiler:   "gc",
		Dir:        dir,
		ImportPath: "p",
		GoFiles:    []string{file},
	}

	var out strings.Builder
	if _, err := RunVetTool(writeVetConfig(t, base), All(), &out); err == nil {
		t.Error("typecheck failure should surface as an error by default")
	}

	lenient := base
	lenient.SucceedOnTypecheckFailure = true
	n, err := RunVetTool(writeVetConfig(t, lenient), All(), &out)
	if err != nil || n != 0 {
		t.Errorf("SucceedOnTypecheckFailure should swallow the failure, got n=%d err=%v", n, err)
	}
}
