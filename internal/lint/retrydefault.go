package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// RetryDefault enforces the accounting-preserving default-off contract
// from PR 6: the paper's formula (3)/(4) experiments count every read, so
// retries, breakers, and hedging only ever turn on at an explicit caller
// opt-in — never silently inside library or example code.
var RetryDefault = &Analyzer{
	Name: "retrydefault",
	Doc: `keep retries, breakers, and hedging off by default

Library packages and examples must not construct an enabled
RetryPolicy (MaxAttempts > 1), an enabled HealthConfig (TripAfter > 0),
or a positive HedgeDelay, and must not reference DefaultRetryPolicy
from function bodies: any of these silently changes the read/probe
accounting the paper experiments pin down. Enabling resilience is a
deployment decision made by the caller (CLI flags, server config), so
command main packages outside examples/ and _test.go files are exempt.
Package-level re-exports of DefaultRetryPolicy remain allowed: they are
the opt-in surface itself.`,
	Run: runRetryDefault,
}

func runRetryDefault(pass *Pass) error {
	pkg := pass.Pkg
	// Commands are where a human explicitly turns resilience on; examples
	// are documentation and must model the default-off contract.
	if pkg.isMain() && !pkg.isExample() {
		return nil
	}
	for _, file := range pkg.Files {
		if isTestFile(pkg.fileName(file.Pos())) {
			continue
		}
		// Package-level specs named Default* are the opt-in surface itself
		// (the store definition and root-package re-exports); everything
		// inside them is exempt. Any other site is wiring and reports.
		exempt := make(map[ast.Node]bool)
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || !allDefaultNames(vs.Names) {
					continue
				}
				ast.Inspect(vs, func(n ast.Node) bool {
					if n != nil {
						exempt[n] = true
					}
					return true
				})
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			if exempt[n] {
				return true
			}
			switch n := n.(type) {
			case *ast.Ident:
				if isDefaultRetryPolicy(pass, n) {
					pass.Reportf(n.Pos(),
						"DefaultRetryPolicy referenced in library/example code enables retries silently; take a policy from the caller instead")
				}
			case *ast.CompositeLit:
				checkResilienceLiteral(pass, n)
			case *ast.AssignStmt:
				checkHedgeAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// allDefaultNames reports whether every name in the spec starts with
// "Default" — the naming convention marking a declared opt-in surface.
func allDefaultNames(names []*ast.Ident) bool {
	for _, n := range names {
		if len(n.Name) < len("Default") || n.Name[:len("Default")] != "Default" {
			return false
		}
	}
	return len(names) > 0
}

// isDefaultRetryPolicy reports whether id names a variable called
// DefaultRetryPolicy (the store definition or any package's re-export).
func isDefaultRetryPolicy(pass *Pass, id *ast.Ident) bool {
	if id.Name != "DefaultRetryPolicy" {
		return false
	}
	obj := pass.Pkg.Info.Uses[id]
	_, isVar := obj.(*types.Var)
	return isVar
}

// checkResilienceLiteral flags composite literals that enable retries,
// breakers, or hedging.
func checkResilienceLiteral(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := types.Unalias(tv.Type).(*types.Named)
	if !ok {
		return
	}
	typeName := named.Obj().Name()
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch {
		case typeName == "RetryPolicy" && key.Name == "MaxAttempts":
			if !constAtMost(pass, kv.Value, 1) {
				pass.Reportf(kv.Pos(),
					"RetryPolicy with MaxAttempts > 1 in library/example code enables retries silently; the default-off contract keeps the paper's read accounting exact")
			}
		case typeName == "HealthConfig" && key.Name == "TripAfter":
			if !constAtMost(pass, kv.Value, 0) {
				pass.Reportf(kv.Pos(),
					"HealthConfig with TripAfter > 0 in library/example code enables the circuit breaker silently; breakers are a caller opt-in")
			}
		case key.Name == "HedgeDelay":
			if !constAtMost(pass, kv.Value, 0) {
				pass.Reportf(kv.Pos(),
					"positive HedgeDelay in library/example code enables hedged reads silently; hedging is a caller opt-in")
			}
		}
	}
}

// checkHedgeAssign flags `x.HedgeDelay = <positive>` assignments.
func checkHedgeAssign(pass *Pass, st *ast.AssignStmt) {
	for i, lhs := range st.Lhs {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "HedgeDelay" || i >= len(st.Rhs) {
			continue
		}
		if !constAtMost(pass, st.Rhs[i], 0) {
			pass.Reportf(st.Pos(),
				"positive HedgeDelay in library/example code enables hedged reads silently; hedging is a caller opt-in")
		}
	}
}

// constAtMost reports whether expr is a compile-time constant <= limit.
// Non-constant expressions report false: a library wiring a variable
// policy is exactly the silent-enablement the rule exists to surface.
func constAtMost(pass *Pass, expr ast.Expr, limit int64) bool {
	tv, ok := pass.Pkg.Info.Types[expr]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	if !ok {
		return false
	}
	return v <= limit
}
