// Package lib is the retrydefault fixture. The analyzer matches the
// RetryPolicy/HealthConfig/HedgeDelay names, not the defining package, so
// the fixture declares look-alike types of its own.
package lib

import "time"

type RetryPolicy struct {
	MaxAttempts int
}

type HealthConfig struct {
	TripAfter int
}

type Config struct {
	HedgeDelay time.Duration
}

// DefaultRetryPolicy is the sanctioned opt-in surface: package-level
// Default* declarations are exempt even though they enable retries.
var DefaultRetryPolicy = RetryPolicy{MaxAttempts: 3}

func enabledRetries() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3} // want "MaxAttempts > 1"
}

func enabledBreaker() HealthConfig {
	return HealthConfig{TripAfter: 5} // want "TripAfter > 0"
}

func enabledHedge() Config {
	return Config{HedgeDelay: 20 * time.Millisecond} // want "positive HedgeDelay"
}

func hedgeAssign(c *Config) {
	c.HedgeDelay = time.Millisecond // want "positive HedgeDelay"
}

func nonConstant(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts} // want "MaxAttempts > 1"
}

func defaultRef() RetryPolicy {
	return DefaultRetryPolicy // want "DefaultRetryPolicy"
}

func disabled() (RetryPolicy, HealthConfig, Config) {
	return RetryPolicy{MaxAttempts: 1}, HealthConfig{TripAfter: 0}, Config{HedgeDelay: 0}
}

func allowed() RetryPolicy {
	//lint:allow retrydefault fixture opts in deliberately
	return RetryPolicy{MaxAttempts: 4}
}
