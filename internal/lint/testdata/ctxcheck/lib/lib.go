// Package lib is the ctxcheck fixture: library code that mints root
// contexts, hides the context parameter, or passes nil contexts.
package lib

import "context"

func fetch(ctx context.Context) error { return ctx.Err() }

func detached() error {
	ctx := context.Background() // want "context.Background"
	return fetch(ctx)
}

func todo() error {
	return fetch(context.TODO()) // want "context.TODO"
}

func ctxSecond(name string, ctx context.Context) error { // want "first parameter"
	_ = name
	return fetch(ctx)
}

func ctxSecondLit() func(int, context.Context) error {
	return func(n int, ctx context.Context) error { // want "first parameter"
		_ = n
		return fetch(ctx)
	}
}

func nilCtx() error {
	return fetch(nil) // want "nil context"
}

func propagated(ctx context.Context) error {
	return fetch(ctx)
}

func allowed() error {
	//lint:allow ctxcheck fixture demonstrates a sanctioned root context
	return fetch(context.Background())
}
