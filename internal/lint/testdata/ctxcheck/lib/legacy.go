package lib

import "context"

// Files named legacy.go are the sanctioned home for context-free
// compatibility wrappers; ctxcheck exempts them wholesale.

func legacyFetch() error {
	return fetch(context.Background())
}
