// Package erasure is a stand-in for the real pool API: poolcheck matches
// GetBuffers by package and function name, so the fixture only needs the
// shapes, not the pooling.
package erasure

// Buffers is a pooled set of shard buffers.
type Buffers struct{ data [][]byte }

// GetBuffers acquires a pooled set of n buffers.
func GetBuffers(n int) *Buffers { return &Buffers{data: make([][]byte, n)} }

// Release returns the set to the pool.
func (b *Buffers) Release() {}
