// Package use is the poolcheck fixture: acquisition/release pairings in
// every shape the analyzer distinguishes.
package use

import "fixture/erasure"

func deferred() {
	bufs := erasure.GetBuffers(4)
	defer bufs.Release()
}

func neverReleased() {
	bufs := erasure.GetBuffers(4) // want "never released"
	_ = bufs
}

func earlyReturn(skip bool) int {
	bufs := erasure.GetBuffers(4)
	if skip {
		return 0 // want "return without releasing"
	}
	bufs.Release()
	return 1
}

func unbound() {
	erasure.GetBuffers(4) // want "without binding"
}

func loopContinue(n int) {
	for i := 0; i < n; i++ {
		bufs := erasure.GetBuffers(1)
		if i%2 == 0 {
			continue // want "continue without releasing"
		}
		bufs.Release()
	}
}

func loopLeak(n int) {
	var last *erasure.Buffers
	for i := 0; i < n; i++ {
		last = erasure.GetBuffers(1) // want "iteration ends"
	}
	last.Release()
}

func releasedOnAllPaths(skip bool) int {
	bufs := erasure.GetBuffers(4)
	if skip {
		bufs.Release()
		return 0
	}
	bufs.Release()
	return 1
}

func allowed() *erasure.Buffers {
	//lint:allow poolcheck fixture hands the set to the caller to release
	bufs := erasure.GetBuffers(4)
	return bufs
}
