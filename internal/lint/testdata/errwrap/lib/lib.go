// Package lib is the errwrap fixture: sentinel declarations, %w wraps,
// and the provenance-losing constructions the analyzer reports.
package lib

import (
	"errors"
	"fmt"
)

var errMissing = errors.New("lib: missing")

func wrap(err error) error {
	return fmt.Errorf("lib: reading index: %w", err)
}

func inFunction() error {
	return errors.New("lib: ad-hoc failure") // want "in-function errors.New"
}

func flattenVerb(err error) error {
	return fmt.Errorf("lib: reading index: %v", err) // want "loses the cause chain"
}

func flattenString(err error) error {
	return fmt.Errorf("lib: reading index: %s", err.Error()) // want "flattens the cause chain"
}

func flattenBesideWrap(err, cause error) error {
	return fmt.Errorf("lib: %w after %s", err, cause.Error()) // want "flattens the cause chain"
}

func nonError(n int) error {
	return fmt.Errorf("lib: %d shards", n)
}

func sentinel() error {
	return errMissing
}

func allowed() error {
	//lint:allow errwrap fixture demonstrates a sanctioned ad-hoc error
	return errors.New("lib: sanctioned")
}
