// Package lib is the lockheld fixture: mutexes held (or not) across
// context-aware calls.
package lib

import (
	"context"
	"sync"
)

type client struct {
	mu    sync.Mutex
	state int
}

func fetch(ctx context.Context) error { return ctx.Err() }

func (c *client) heldAcross(ctx context.Context) error {
	c.mu.Lock()
	err := fetch(ctx) // want "holding a mutex locked"
	c.mu.Unlock()
	return err
}

func (c *client) deferredHold(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fetch(ctx) // want "holding a mutex locked"
}

func (c *client) releasedFirst(ctx context.Context) error {
	c.mu.Lock()
	c.state++
	c.mu.Unlock()
	return fetch(ctx)
}

func (c *client) derivesContext(ctx context.Context) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, cancel := context.WithCancel(ctx)
	cancel()
}

func (c *client) allowedRegion(ctx context.Context) error {
	//lint:allow lockheld fixture serializes the exchange by design
	c.mu.Lock()
	defer c.mu.Unlock()
	return fetch(ctx)
}
