package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrWrap enforces the error-provenance contract (DESIGN.md section 8):
// errors crossing package boundaries carry their cause chain, so
// errors.Is against the ShardError taxonomy keeps working at every layer.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: `require provenance-preserving error construction in library packages

An error built mid-function with errors.New, or an error argument
flattened through fmt.Errorf's %v/%s (or err.Error()), severs the cause
chain: callers can no longer classify it with errors.Is/As against the
ShardError taxonomy, so retry, health tracking, and repair all
misclassify it as an unknown permanent failure. Sentinels must be
declared at package level; wrapping must use %w. Test files are exempt
(tests construct throwaway errors deliberately).`,
	Run: runErrWrap,
}

func runErrWrap(pass *Pass) error {
	pkg := pass.Pkg
	if pkg.isMain() {
		return nil
	}
	for _, file := range pkg.Files {
		if isTestFile(pkg.fileName(file.Pos())) {
			continue
		}
		// Package-level var/const specs are the sanctioned home for
		// sentinels; collect their ranges so errors.New there is allowed.
		sentinel := make(map[*ast.CallExpr]bool)
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			ast.Inspect(gd, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isErrorsNew(pass, call) {
					sentinel[call] = true
				}
				return true
			})
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isErrorsNew(pass, call) && !sentinel[call] {
				pass.Reportf(call.Pos(),
					"in-function errors.New loses provenance; declare a package-level sentinel or wrap a cause with fmt.Errorf and %%w")
			}
			checkErrorf(pass, call)
			return true
		})
	}
	return nil
}

// isErrorsNew reports whether call is errors.New(...).
func isErrorsNew(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Pkg.Info, call)
	return fn != nil && fn.Name() == "New" && funcPkgPath(fn) == "errors"
}

// checkErrorf flags fmt.Errorf calls that format an error-typed argument
// without a %w verb, and err.Error() arguments that flatten the chain
// even when %w is present elsewhere.
func checkErrorf(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Name() != "Errorf" || funcPkgPath(fn) != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	format, ok := constantString(pass.Pkg.Info, call.Args[0])
	hasWrap := ok && strings.Contains(format, "%w")
	for _, arg := range call.Args[1:] {
		if isErrorDotError(pass.Pkg.Info, arg) {
			pass.Reportf(arg.Pos(),
				"err.Error() in fmt.Errorf flattens the cause chain; pass the error itself with %%w")
			continue
		}
		if hasWrap || !ok {
			continue
		}
		tv, found := pass.Pkg.Info.Types[arg]
		if !found || tv.Type == nil {
			continue
		}
		if implementsError(tv.Type) {
			pass.Reportf(arg.Pos(),
				"error formatted with %%v/%%s loses the cause chain; use %%w so errors.Is keeps working across package boundaries")
		}
	}
}

// constantString returns the constant string value of expr, if any.
func constantString(info *types.Info, expr ast.Expr) (string, bool) {
	tv, ok := info.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// isErrorDotError reports whether expr is a call of the error
// interface's Error method.
func isErrorDotError(info *types.Info, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" {
		return false
	}
	tv, ok := info.Types[sel.X]
	return ok && tv.Type != nil && implementsError(tv.Type)
}
