package lint

import (
	"go/ast"
	"path/filepath"
)

// CtxCheck enforces the ctx-first API contract from PR 4 (DESIGN.md
// section 8): library code never mints its own root context, so every
// operation stays cancellable from the caller down.
var CtxCheck = &Analyzer{
	Name: "ctxcheck",
	Doc: `enforce the ctx-first API contract in library packages

Library packages (everything that is not a main package or a _test.go
file) must not call context.Background() or context.TODO(): a root
context minted mid-stack silently detaches the operation from its
caller's deadline and cancellation. Context parameters must come first
in the parameter list, and a context argument must never be a nil
literal. Files named legacy.go are exempt: they exist precisely to hold
the deprecated Background-wrapping compatibility shims.`,
	Run: runCtxCheck,
}

// ctxExemptFile reports whether an entire file is out of ctxcheck scope:
// test files and legacy.go compatibility shims.
func ctxExemptFile(name string) bool {
	return isTestFile(name) || filepath.Base(name) == "legacy.go"
}

func runCtxCheck(pass *Pass) error {
	pkg := pass.Pkg
	if pkg.isMain() {
		return nil
	}
	for _, file := range pkg.Files {
		if ctxExemptFile(pkg.fileName(file.Pos())) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCtxCall(pass, n)
			case *ast.FuncDecl:
				checkCtxParamFirst(pass, n.Type)
			case *ast.FuncLit:
				checkCtxParamFirst(pass, n.Type)
			}
			return true
		})
	}
	return nil
}

// checkCtxCall flags context.Background()/context.TODO() calls and nil
// literals passed where a callee expects a context first.
func checkCtxCall(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	if fn := calleeFunc(info, call); fn != nil && funcPkgPath(fn) == "context" {
		switch fn.Name() {
		case "Background", "TODO":
			pass.Reportf(call.Pos(),
				"context.%s() in library code detaches the operation from its caller's cancellation; accept a ctx parameter instead", fn.Name())
		}
	}
	sig := calleeSignature(info, call)
	if sig == nil || sig.Params().Len() == 0 || len(call.Args) == 0 {
		return
	}
	if !isContextType(sig.Params().At(0).Type()) {
		return
	}
	if tv, ok := info.Types[call.Args[0]]; ok && tv.IsNil() {
		pass.Reportf(call.Args[0].Pos(),
			"nil context passed to a context-aware callee; propagate the caller's ctx")
	}
}

// checkCtxParamFirst flags signatures that accept a context anywhere but
// the first parameter.
func checkCtxParamFirst(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	info := pass.Pkg.Info
	pos := 0
	for _, field := range ft.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok {
			continue
		}
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(tv.Type) && pos > 0 {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter")
		}
		pos += n
	}
}
