package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	DepOnly    bool
	Standard   bool
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// Load lists the packages matching patterns in dir (module-aware, via the
// go command), parses the matched packages from source, and typechecks
// them against compiler export data for their dependencies. It is the
// standalone-mode counterpart of the `go vet -vettool` driver: both feed
// the same analyzers, but Load owns package discovery itself.
//
// Only non-test files are loaded in this mode; the vettool path (which the
// CI lint job uses) additionally covers test compilation units.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %v: %w\n%s", patterns, err, stderr.Bytes())
	}

	var all []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		all = append(all, lp)
	}

	exportFor := make(map[string]string)
	byPath := make(map[string]*listPackage)
	for _, lp := range all {
		byPath[lp.ImportPath] = lp
		if lp.Export != "" {
			exportFor[lp.ImportPath] = lp.Export
		}
	}

	var targets []*listPackage
	for _, lp := range all {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: loading %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		targets = append(targets, lp)
	}
	sortTopologically(targets, byPath)

	fset := token.NewFileSet()
	ld := &loaderImporter{
		fset:      fset,
		exportFor: exportFor,
		source:    make(map[string]*types.Package),
	}
	ld.gc = importer.ForCompiler(fset, "gc", ld.lookup)

	var pkgs []*Package
	for _, lp := range targets {
		pkg, err := typecheck(fset, ld, lp)
		if err != nil {
			return nil, err
		}
		ld.source[lp.ImportPath] = pkg.Types
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// typecheck parses and typechecks one listed package from source.
func typecheck(fset *token.FileSet, imp types.Importer, lp *listPackage) (*Package, error) {
	var files []*ast.File
	var names []string
	for _, f := range lp.GoFiles {
		if !filepath.IsAbs(f) {
			f = filepath.Join(lp.Dir, f)
		}
		parsed, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", f, err)
		}
		files = append(files, parsed)
		names = append(names, f)
	}
	goVersion := ""
	if lp.Module != nil && lp.Module.GoVersion != "" {
		goVersion = "go" + lp.Module.GoVersion
	}
	return typecheckFiles(fset, imp, lp.ImportPath, lp.Dir, goVersion, files, names)
}

// typecheckFiles typechecks one compilation unit from already-parsed
// files. It is shared by the standalone loader and the vettool driver.
func typecheckFiles(fset *token.FileSet, imp types.Importer, importPath, dir, goVersion string, files []*ast.File, names []string) (*Package, error) {
	info := newTypesInfo()
	conf := types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Error:     func(error) {}, // keep going; first hard error returned below
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typechecking %s: %w", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		FileNames:  names,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// newTypesInfo returns a types.Info with every map analyzers consume.
func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// loaderImporter resolves imports for source-typechecked packages: targets
// already checked from source are returned directly, everything else is
// read from the compiler export data `go list -export` produced.
type loaderImporter struct {
	fset      *token.FileSet
	exportFor map[string]string
	source    map[string]*types.Package
	gc        types.Importer
}

func (l *loaderImporter) Import(path string) (*types.Package, error) {
	if p, ok := l.source[path]; ok {
		return p, nil
	}
	return l.gc.Import(path)
}

// lookup feeds export data files to the gc importer.
func (l *loaderImporter) lookup(path string) (io.ReadCloser, error) {
	f, ok := l.exportFor[path]
	if !ok {
		return nil, fmt.Errorf("lint: no export data for %q", path)
	}
	return os.Open(f)
}

// sortTopologically orders targets so that every package follows its
// in-target dependencies (imports among non-targets don't matter: those
// are satisfied from export data).
func sortTopologically(targets []*listPackage, byPath map[string]*listPackage) {
	index := make(map[string]int, len(targets))
	for i, lp := range targets {
		index[lp.ImportPath] = i
	}
	order := make(map[string]int, len(targets))
	var visit func(lp *listPackage) int
	visit = func(lp *listPackage) int {
		if d, ok := order[lp.ImportPath]; ok {
			return d
		}
		order[lp.ImportPath] = 0 // cycle guard; go packages cannot cycle
		depth := 0
		for _, imp := range lp.Imports {
			dep, ok := byPath[imp]
			if !ok {
				continue
			}
			if _, isTarget := index[imp]; !isTarget {
				continue
			}
			if d := visit(dep) + 1; d > depth {
				depth = d
			}
		}
		order[lp.ImportPath] = depth
		return depth
	}
	for _, lp := range targets {
		visit(lp)
	}
	sort.SliceStable(targets, func(i, j int) bool {
		return order[targets[i].ImportPath] < order[targets[j].ImportPath]
	})
}
