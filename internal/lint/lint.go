// Package lint is secvet's analysis engine: a small, dependency-free
// counterpart of golang.org/x/tools/go/analysis that enforces this
// repository's invariants (see DESIGN.md section 11). The container this
// project builds in has no module proxy, so the framework is grown from
// the standard library: packages are loaded either from source plus
// compiler export data (standalone mode, loader.go) or from the `go vet
// -vettool` config protocol (unitchecker.go); analyzers themselves are
// written against the Pass API below and never care which driver ran them.
//
// An intentional violation is silenced in place with a directive comment
//
//	//lint:allow <analyzer> <reason>
//
// on the offending line or the line above it. The reason is mandatory:
// a directive without one is not honored, so every exception in the tree
// documents why it is one.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check over a single package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is the one-paragraph rule statement shown by `secvet help`.
	Doc string
	// Run reports violations against the pass and returns a hard error
	// only when the analyzer itself cannot operate.
	Run func(*Pass) error
}

// All returns secvet's analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		CtxCheck,
		ErrWrap,
		PoolCheck,
		LockHeld,
		RetryDefault,
	}
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Package is one loaded, typechecked compilation unit.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	FileNames  []string
	Types      *types.Package
	Info       *types.Info
}

// Diagnostic is one reported violation, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// Pass carries one package through one analyzer and collects reports.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	allows map[string][]allowDirective // file name -> directives
	diags  *[]Diagnostic
}

// Reportf records a violation at pos unless an allow directive for this
// analyzer covers the line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.allowed(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportfRegion records a violation at pos unless an allow directive
// covers either pos or the region anchor (for region-scoped rules like
// lockheld, one directive at the Lock site silences the whole held
// region — the lock is the design decision, not each call under it).
func (p *Pass) ReportfRegion(pos, anchor token.Pos, format string, args ...any) {
	if p.allowed(p.Pkg.Fset.Position(anchor)) {
		return
	}
	p.Reportf(pos, format, args...)
}

// allowed reports whether a //lint:allow directive for this analyzer
// covers the diagnostic's line (same line or the line above).
func (p *Pass) allowed(pos token.Position) bool {
	for _, d := range p.allows[pos.Filename] {
		if d.analyzer != p.Analyzer.Name {
			continue
		}
		if d.line == pos.Line || d.line == pos.Line-1 {
			return true
		}
	}
	return false
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	analyzer string
	line     int
}

// allowRE matches `//lint:allow <analyzer> <reason>`; the reason must be
// non-empty or the directive is ignored.
var allowRE = regexp.MustCompile(`^//lint:allow\s+([A-Za-z0-9_-]+)\s+\S`)

// parseAllows collects allow directives per file.
func parseAllows(pkg *Package) map[string][]allowDirective {
	out := make(map[string][]allowDirective)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				out[pos.Filename] = append(out[pos.Filename], allowDirective{
					analyzer: m[1],
					line:     pos.Line,
				})
			}
		}
	}
	return out
}

// RunAnalyzers applies every analyzer to every package and returns the
// surviving diagnostics in file/line order.
func RunAnalyzers(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		allows := parseAllows(pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, allows: allows, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags, nil
}

// --- shared helpers for analyzers ---

// isTestFile reports whether the file name is a _test.go file.
func isTestFile(name string) bool {
	return strings.HasSuffix(name, "_test.go")
}

// fileOf returns the *ast.File containing pos.
func (pkg *Package) fileOf(pos token.Pos) *ast.File {
	for _, f := range pkg.Files {
		if f.FileStart <= pos && pos <= f.FileEnd {
			return f
		}
	}
	return nil
}

// fileName returns the file name of the file containing pos.
func (pkg *Package) fileName(pos token.Pos) string {
	return pkg.Fset.Position(pos).Filename
}

// isMain reports whether the package is a main package (command or
// example binary).
func (pkg *Package) isMain() bool {
	return pkg.Types != nil && pkg.Types.Name() == "main"
}

// isExample reports whether the package lives under an examples/ tree.
func (pkg *Package) isExample() bool {
	return strings.Contains(pkg.ImportPath, "/examples/") ||
		strings.HasPrefix(pkg.ImportPath, "examples/")
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Context" &&
		obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// calleeFunc resolves the called function object of a call expression,
// if it is a statically known *types.Func.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// calleeSignature returns the signature of the called expression, for
// both static and dynamic (function value) calls. Type conversions and
// builtin calls return nil.
func calleeSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// funcFrom reports the package path and name of fn's origin, handling
// methods (pkg of the receiver's type).
func funcPkgPath(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}

// errorType is the predeclared error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// implementsError reports whether t implements the error interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType)
}
