package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolCheck enforces the pooled-buffer discipline from PR 1: every
// erasure.GetBuffers acquisition is released exactly once on every path,
// or the zero-allocation hot paths quietly degrade into allocation storms
// as the pool drains.
var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc: `require a release for every pooled buffer acquisition

Each call to erasure.GetBuffers must be bound to a variable and paired
with either a deferred Release on that variable or an explicit Release
before every exit (return, continue, or loop-iteration end) that follows
the acquisition. The check is lexical, not a full control-flow analysis:
an exit is considered covered when a Release of the variable appears
between the acquisition and the exit. Acquisitions whose result is not
bound to a variable cannot be released and are always reported.`,
	Run: runPoolCheck,
}

func runPoolCheck(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkPoolFunc(pass, body)
			}
			return true
		})
	}
	return nil
}

// isGetBuffers reports whether call acquires pooled buffers: a call of a
// function named GetBuffers in a package named erasure.
func isGetBuffers(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Name() != "GetBuffers" || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Name() == "erasure"
}

// acquisition is one GetBuffers call bound to a variable.
type acquisition struct {
	call *ast.CallExpr
	obj  types.Object // the bound variable; nil if unbound
}

// checkPoolFunc verifies every acquisition belonging directly to one
// function body. Acquisitions inside nested function literals are skipped
// here — each literal is checked as its own function — but a release in a
// nested literal still counts for the enclosing body's acquisitions
// (lexical coverage is deliberately permissive; see the analyzer doc).
func checkPoolFunc(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	var acquisitions []acquisition
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false // nested literal: checked separately
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isGetBuffers(pass, call) {
			return true
		}
		acquisitions = append(acquisitions, acquisition{call: call, obj: boundVar(info, body, call)})
		return true
	})
	if len(acquisitions) == 0 {
		return
	}
	for _, acq := range acquisitions {
		if acq.obj == nil {
			pass.Reportf(acq.call.Pos(),
				"pooled buffers acquired without binding the result; the set can never be released")
			continue
		}
		checkReleased(pass, body, acq)
	}
}

// boundVar returns the variable the acquisition's result is bound to via
// `v := GetBuffers(...)`, `v = GetBuffers(...)`, or `var v = ...`.
func boundVar(info *types.Info, body *ast.BlockStmt, call *ast.CallExpr) types.Object {
	var obj types.Object
	ast.Inspect(body, func(n ast.Node) bool {
		if obj != nil {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if ast.Unparen(rhs) == call && i < len(st.Lhs) {
					if id, ok := st.Lhs[i].(*ast.Ident); ok {
						if o := info.Defs[id]; o != nil {
							obj = o
						} else if o := info.Uses[id]; o != nil {
							obj = o
						}
					}
				}
			}
		case *ast.ValueSpec:
			for i, rhs := range st.Values {
				if ast.Unparen(rhs) == call && i < len(st.Names) {
					if o := info.Defs[st.Names[i]]; o != nil {
						obj = o
					}
				}
			}
		}
		return true
	})
	return obj
}

// checkReleased verifies that acq.obj is released on every exit after the
// acquisition.
func checkReleased(pass *Pass, body *ast.BlockStmt, acq acquisition) {
	info := pass.Pkg.Info
	acqPos := acq.call.End()

	// Pass 1: a deferred release after the acquisition covers everything.
	deferred := false
	var releases []token.Pos // positions of non-deferred releases
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			if isReleaseOf(info, st.Call, acq.obj) && st.Pos() >= acqPos {
				deferred = true
			}
		case *ast.CallExpr:
			if isReleaseOf(info, st, acq.obj) && st.Pos() >= acqPos {
				releases = append(releases, st.Pos())
			}
		}
		return true
	})
	if deferred {
		return
	}
	if len(releases) == 0 {
		pass.Reportf(acq.call.Pos(),
			"pooled buffers are never released; add `defer %s.Release()` after the acquisition", acq.obj.Name())
		return
	}

	// Pass 2: every exit after the acquisition must have a release
	// lexically between the acquisition and itself.
	covered := func(exitPos token.Pos) bool {
		for _, r := range releases {
			if r >= acqPos && r <= exitPos {
				return true
			}
		}
		return false
	}
	loop := enclosingLoopBody(body, acq.call.Pos())
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.ReturnStmt:
			if st.Pos() >= acqPos && !covered(st.Pos()) {
				pass.Reportf(st.Pos(),
					"return without releasing pooled buffers %q acquired earlier; release before every exit or use defer", acq.obj.Name())
			}
		case *ast.BranchStmt:
			if loop != nil && st.Tok == token.CONTINUE && st.Pos() >= acqPos && st.Pos() <= loop.End() && !covered(st.Pos()) {
				pass.Reportf(st.Pos(),
					"continue without releasing pooled buffers %q acquired this iteration", acq.obj.Name())
			}
		}
		return true
	})
	// Loop-iteration fallthrough: an acquisition inside a loop body must
	// be released before the iteration ends or each pass leaks one set.
	if loop != nil && !covered(loop.End()) {
		pass.Reportf(acq.call.Pos(),
			"pooled buffers %q acquired inside a loop are not released before the iteration ends", acq.obj.Name())
	}
}

// isReleaseOf reports whether call is obj.Release().
func isReleaseOf(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	return info.Uses[id] == obj
}

// enclosingLoopBody returns the body of the innermost for/range statement
// whose body contains pos, or nil.
func enclosingLoopBody(body *ast.BlockStmt, pos token.Pos) *ast.BlockStmt {
	var innermost *ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		var lb *ast.BlockStmt
		switch st := n.(type) {
		case *ast.ForStmt:
			lb = st.Body
		case *ast.RangeStmt:
			lb = st.Body
		default:
			return true
		}
		if lb.Pos() <= pos && pos <= lb.End() {
			innermost = lb
		}
		return true
	})
	return innermost
}
