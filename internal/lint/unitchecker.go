package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
)

// vetConfig mirrors the JSON config file the go command hands a
// -vettool for each package (see cmd/go/internal/work and
// golang.org/x/tools/go/analysis/unitchecker, whose protocol this
// reimplements on the standard library).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunVetTool executes one `go vet -vettool` package unit described by the
// config file: it typechecks the unit against the compiler's export data,
// runs every analyzer, prints surviving diagnostics to w, and returns
// their count. secvet exchanges no facts between packages, so the vetx
// output is written as an empty placeholder the go command can cache.
func RunVetTool(cfgFile string, analyzers []*Analyzer, w io.Writer) (int, error) {
	raw, err := os.ReadFile(cfgFile)
	if err != nil {
		return 0, fmt.Errorf("lint: reading vet config: %w", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return 0, fmt.Errorf("lint: parsing vet config %s: %w", cfgFile, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("secvet: no facts\n"), 0o666); err != nil {
			return 0, fmt.Errorf("lint: writing vetx output: %w", err)
		}
	}
	if cfg.VetxOnly {
		return 0, nil
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		return 0, nil // only gc export data is readable here
	}

	fset := token.NewFileSet()
	var files []*ast.File
	var names []string
	for _, f := range cfg.GoFiles {
		parsed, err := parser.ParseFile(fset, f, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0, nil
			}
			return 0, fmt.Errorf("lint: parsing %s: %w", f, err)
		}
		files = append(files, parsed)
		names = append(names, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := typecheckFiles(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoVersion, files, names)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, nil
		}
		return 0, err
	}

	diags, err := RunAnalyzers(analyzers, []*Package{pkg})
	if err != nil {
		return 0, err
	}
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	return len(diags), nil
}
