package lint

import (
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness mirrors golang.org/x/tools/go/analysis/analysistest
// in miniature: each testdata/<analyzer> directory is a self-contained
// module whose sources carry `// want "substring"` markers on the lines
// where the analyzer must report, and nowhere else. A fixture run fails
// on both missed and unexpected diagnostics, so the positive and negative
// cases live side by side in the same files.

var wantRE = regexp.MustCompile(`// want "([^"]*)"`)

type wantMark struct {
	file    string
	line    int
	substr  string
	matched bool
}

// collectWants scans every .go file under dir for want markers.
func collectWants(t *testing.T, dir string) []*wantMark {
	t.Helper()
	var wants []*wantMark
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRE.FindAllStringSubmatch(line, -1) {
				wants = append(wants, &wantMark{file: path, line: i + 1, substr: m[1]})
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scanning fixture %s: %v", dir, err)
	}
	return wants
}

// matchWant consumes the first unmatched marker covering the diagnostic.
func matchWant(wants []*wantMark, d Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line &&
			strings.Contains(d.Message, w.substr) {
			w.matched = true
			return true
		}
	}
	return false
}

// runFixture loads testdata/<name> as its own module and checks the
// analyzer's diagnostics against the want markers exactly.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s matched no packages", name)
	}
	diags, err := RunAnalyzers([]*Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("running %s on fixture: %v", a.Name, err)
	}
	wants := collectWants(t, dir)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want markers; a fixture must assert something", name)
	}
	for _, d := range diags {
		if !matchWant(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic containing %q was reported", w.file, w.line, w.substr)
		}
	}
}

func TestCtxCheckFixture(t *testing.T)     { runFixture(t, CtxCheck, "ctxcheck") }
func TestErrWrapFixture(t *testing.T)      { runFixture(t, ErrWrap, "errwrap") }
func TestPoolCheckFixture(t *testing.T)    { runFixture(t, PoolCheck, "poolcheck") }
func TestLockHeldFixture(t *testing.T)     { runFixture(t, LockHeld, "lockheld") }
func TestRetryDefaultFixture(t *testing.T) { runFixture(t, RetryDefault, "retrydefault") }

// TestModuleClean is the smoke test the lint CI job depends on staying
// meaningful: the suite reports nothing on the repository itself, so any
// new diagnostic in CI is a regression introduced by the change under
// review, not pre-existing noise.
func TestModuleClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := RunAnalyzers(All(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("module is expected to be secvet-clean, got: %s", d)
	}
}

// TestLookup pins the analyzer registry: every analyzer is reachable by
// name and unknown names miss.
func TestLookup(t *testing.T) {
	for _, a := range All() {
		if Lookup(a.Name) != a {
			t.Errorf("Lookup(%q) did not return the registered analyzer", a.Name)
		}
	}
	if Lookup("nosuch") != nil {
		t.Error("Lookup of an unknown name should return nil")
	}
}

// TestAllowRequiresReason pins the directive grammar: no reason, no
// suppression.
func TestAllowRequiresReason(t *testing.T) {
	for directive, ok := range map[string]bool{
		"//lint:allow lockheld serialized by design": true,
		"//lint:allow lockheld":                      false,
		"//lint:allow":                               false,
		"// lint:allow lockheld reason":              false,
	} {
		if got := allowRE.MatchString(directive); got != ok {
			t.Errorf("allowRE.MatchString(%q) = %v, want %v", directive, got, ok)
		}
	}
}
