package lint

import (
	"fmt"
	"io"
	"os"
	"strings"
)

// Main is the secvet entry point, shared by cmd/secvet. It speaks both
// driver protocols:
//
//   - standalone: `secvet [packages]` loads the module in the current
//     directory and analyzes the matched packages (non-test files);
//   - vettool: `go vet -vettool=$(which secvet) ./...` invokes the binary
//     once per compilation unit (including test units) with -V=full,
//     -flags, and *.cfg arguments per the go command's vet protocol.
//
// It returns the process exit code: 0 clean, 1 operational error, 2 when
// diagnostics were reported (matching go vet's convention).
func Main(args []string, stdout, stderr io.Writer) int {
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			// The go command requires `-V=full` to print a stable
			// identity line it folds into its build cache key.
			fmt.Fprintf(stdout, "secvet version %s\n", Version)
			return 0
		case args[0] == "-flags":
			// No tool-specific flags; the go command expects a JSON
			// array of flag definitions.
			fmt.Fprintln(stdout, "[]")
			return 0
		case args[0] == "help" || args[0] == "-h" || args[0] == "--help":
			printHelp(stdout)
			return 0
		}
	}
	if len(args) == 2 && args[0] == "help" {
		if a := Lookup(args[1]); a != nil {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
			return 0
		}
		fmt.Fprintf(stderr, "secvet: no analyzer named %q\n", args[1])
		return 1
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		n, err := RunVetTool(args[0], All(), stdout)
		if err != nil {
			fmt.Fprintf(stderr, "secvet: %v\n", err)
			return 1
		}
		if n > 0 {
			return 2
		}
		return 0
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "secvet: %v\n", err)
		return 1
	}
	pkgs, err := Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "secvet: %v\n", err)
		return 1
	}
	diags, err := RunAnalyzers(All(), pkgs)
	if err != nil {
		fmt.Fprintf(stderr, "secvet: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// Version is the tool identity reported to the go command's -V=full
// handshake; bump it when analyzer behavior changes so cached vet
// results are invalidated.
const Version = "v1.0.0"

func printHelp(w io.Writer) {
	fmt.Fprintln(w, "secvet enforces this repository's invariants (DESIGN.md section 11).")
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "usage:")
	fmt.Fprintln(w, "  secvet [packages]             analyze packages (default ./...)")
	fmt.Fprintln(w, "  go vet -vettool=$(which secvet) ./...   run as a vet tool (covers test files)")
	fmt.Fprintln(w, "  secvet help <analyzer>        print one analyzer's rule")
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "analyzers:")
	for _, a := range All() {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Fprintf(w, "  %-14s %s\n", a.Name, doc)
	}
	fmt.Fprintln(w, "")
	fmt.Fprintln(w, "suppress an intentional violation in place with a mandatory reason:")
	fmt.Fprintln(w, "  //lint:allow <analyzer> <reason>")
}
