package lint

import (
	"go/ast"
	"go/types"
)

// LockHeld enforces the no-locks-across-RPCs rule: a mutex held across a
// call that can block on the network or on a context turns one slow node
// into a process-wide stall (every other goroutine queues on the lock
// behind the straggler).
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc: `forbid holding a sync.Mutex/RWMutex across blocking calls

Inside a region where a sync.Mutex or sync.RWMutex is held — from
x.Lock()/x.RLock() until the matching unlock, or to the end of the
function when the unlock is deferred — no call may be made to a callee
whose first parameter is a context.Context. Such callees are exactly
the operations that can block on the network or on cancellation
(Node.Get/Put, Cluster batches, transport round trips, retry sleeps).
Functions in package context itself (WithCancel etc.) are exempt: they
only derive contexts and never block.`,
	Run: runLockHeld,
}

func runLockHeld(pass *Pass) error {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkLockRegions(pass, body)
			}
			return true
		})
	}
	return nil
}

// lockCall identifies a call statement as a mutex (un)lock and returns
// the receiver object so lock/unlock pairs can be matched.
func lockCall(info *types.Info, call *ast.CallExpr) (obj types.Object, method string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return nil, ""
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return nil, ""
	}
	return lockReceiverObj(info, sel.X), sel.Sel.Name
}

// lockReceiverObj resolves the identifier chain of a mutex receiver to a
// stable key object: the root identifier's object plus nothing else, so
// `c.mu` and `c.mu` match while `a.mu` and `b.mu` do not. Selector chains
// resolve to the field object of the final selector.
func lockReceiverObj(info *types.Info, expr ast.Expr) types.Object {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

// checkLockRegions scans one function body for lock/unlock regions and
// reports blocking calls inside them. Regions are tracked lexically over
// the statement list of each block, which matches how the codebase writes
// locking (lock and unlock in the same block, or a defer).
func checkLockRegions(pass *Pass, body *ast.BlockStmt) {
	info := pass.Pkg.Info
	type region struct {
		obj   types.Object
		start ast.Node
		end   ast.Node // nil: held to end of function (deferred or missing unlock)
	}
	var regions []region

	var locks []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false // nested literals get their own pass
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if obj, m := lockCall(info, call); obj != nil && (m == "Lock" || m == "RLock") {
			locks = append(locks, call)
		}
		return true
	})

	for _, lk := range locks {
		obj, _ := lockCall(info, lk)
		var unlock ast.Node
		deferred := false
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
				return false
			}
			switch st := n.(type) {
			case *ast.DeferStmt:
				if o, m := lockCall(info, st.Call); o == obj && (m == "Unlock" || m == "RUnlock") && st.Pos() > lk.Pos() {
					deferred = true
				}
			case *ast.CallExpr:
				if o, m := lockCall(info, st); o == obj && (m == "Unlock" || m == "RUnlock") &&
					st.Pos() > lk.Pos() && !insideDefer(body, st) {
					if unlock == nil || st.Pos() < unlock.Pos() {
						unlock = st
					}
				}
			}
			return true
		})
		if deferred {
			regions = append(regions, region{obj: obj, start: lk, end: nil})
		} else {
			regions = append(regions, region{obj: obj, start: lk, end: unlock})
		}
	}

	if len(regions) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isBlockingCall(pass, call) {
			return true
		}
		for _, r := range regions {
			if call.Pos() <= r.start.End() {
				continue
			}
			if r.end != nil && call.Pos() >= r.end.Pos() {
				continue
			}
			pass.ReportfRegion(call.Pos(), r.start.Pos(),
				"blocking context-aware call while holding a mutex locked at line %d; release the lock (or snapshot state) before calls that can block on the network or ctx",
				pass.Pkg.Fset.Position(r.start.Pos()).Line)
			return true
		}
		return true
	})
}

// insideDefer reports whether the call is the direct call of a defer
// statement within body.
func insideDefer(body *ast.BlockStmt, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok && d.Call == call {
			found = true
		}
		return !found
	})
	return found
}

// isBlockingCall reports whether the callee's first parameter is a
// context.Context — the codebase's marker for "can block on the network
// or on cancellation". Context-derivation helpers in package context are
// exempt.
func isBlockingCall(pass *Pass, call *ast.CallExpr) bool {
	info := pass.Pkg.Info
	sig := calleeSignature(info, call)
	if sig == nil || sig.Params().Len() == 0 {
		return false
	}
	if !isContextType(sig.Params().At(0).Type()) {
		return false
	}
	if fn := calleeFunc(info, call); fn != nil && funcPkgPath(fn) == "context" {
		return false
	}
	return true
}
