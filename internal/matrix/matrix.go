// Package matrix implements dense matrix algebra over GF(2^8) as needed by
// the SEC erasure codes: multiplication, Gauss-Jordan inversion, rank,
// sub-matrix selection, and the Cauchy/Vandermonde constructions whose
// square-submatrix properties give the paper's design Criteria 1 and 2.
package matrix

import (
	"errors"
	"fmt"
	"strings"

	"github.com/secarchive/sec/internal/gf"
)

// ErrSingular is returned when an operation requires an invertible matrix
// but the input has no inverse.
var ErrSingular = errors.New("matrix: singular matrix")

// Matrix is a dense rows x cols matrix over GF(2^8), stored row-major.
// The zero value is an empty 0x0 matrix.
type Matrix struct {
	rows, cols int
	data       []byte
}

// New returns a zero-filled rows x cols matrix. It panics if either
// dimension is negative.
func New(rows, cols int) Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	return Matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
// The data is copied.
func FromRows(rows [][]byte) (Matrix, error) {
	if len(rows) == 0 {
		return Matrix{}, nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return Matrix{}, fmt.Errorf("matrix: ragged rows: row 0 has %d columns, row %d has %d", cols, i, len(r))
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Cauchy returns the n x k Cauchy matrix with entries 1/(h_i - f_j) built
// from the canonical point sets h_i = i (0 <= i < n) and f_j = n+j
// (0 <= j < k). Every square submatrix of a Cauchy matrix is invertible
// (Lacan & Fimes), which is exactly what SEC's Criteria 1 and 2 require.
// It fails if n+k exceeds the field order.
func Cauchy(n, k int) (Matrix, error) {
	if n <= 0 || k <= 0 {
		return Matrix{}, fmt.Errorf("matrix: Cauchy dimensions must be positive, got %dx%d", n, k)
	}
	if n+k > gf.Order {
		return Matrix{}, fmt.Errorf("matrix: Cauchy needs n+k <= %d distinct field points, got n=%d k=%d", gf.Order, n, k)
	}
	hs := make([]byte, n)
	fs := make([]byte, k)
	for i := range hs {
		hs[i] = byte(i)
	}
	for j := range fs {
		fs[j] = byte(n + j)
	}
	return CauchyWith(hs, fs)
}

// CauchyWith returns the Cauchy matrix for explicit point sets: entry (i,j)
// is 1/(hs[i] + fs[j]) (addition is subtraction in characteristic 2). The
// points must be pairwise distinct across the union of hs and fs.
func CauchyWith(hs, fs []byte) (Matrix, error) {
	seen := make(map[byte]bool, len(hs)+len(fs))
	for _, p := range hs {
		if seen[p] {
			return Matrix{}, fmt.Errorf("matrix: duplicate Cauchy point %d", p)
		}
		seen[p] = true
	}
	for _, p := range fs {
		if seen[p] {
			return Matrix{}, fmt.Errorf("matrix: duplicate Cauchy point %d", p)
		}
		seen[p] = true
	}
	m := New(len(hs), len(fs))
	for i, h := range hs {
		row := m.Row(i)
		for j, f := range fs {
			row[j] = gf.Inv(h ^ f)
		}
	}
	return m, nil
}

// Vandermonde returns the n x k Vandermonde matrix with rows
// [1, a_i, a_i^2, ..., a_i^(k-1)] for a_i = alpha^i, alpha the field
// generator. With n <= 255 the evaluation points are pairwise distinct, so
// every k x k submatrix is invertible and the matrix generates an MDS code.
// The geometric structure additionally enables Berlekamp-Massey syndrome
// decoding in the sparse package.
func Vandermonde(n, k int) (Matrix, error) {
	if n <= 0 || k <= 0 {
		return Matrix{}, fmt.Errorf("matrix: Vandermonde dimensions must be positive, got %dx%d", n, k)
	}
	if n > gf.Order-1 {
		return Matrix{}, fmt.Errorf("matrix: Vandermonde needs n <= %d distinct non-zero points, got n=%d", gf.Order-1, n)
	}
	m := New(n, k)
	for i := 0; i < n; i++ {
		a := gf.Exp(i)
		row := m.Row(i)
		for j := 0; j < k; j++ {
			row[j] = gf.Pow(a, j)
		}
	}
	return m, nil
}

// Rows returns the number of rows.
func (m Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m Matrix) Cols() int { return m.cols }

// At returns the entry at row i, column j.
func (m Matrix) At(i, j int) byte {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the entry at row i, column j.
func (m Matrix) Set(i, j int, v byte) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage. Mutating the
// slice mutates the matrix.
func (m Matrix) Row(i int) []byte {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy of m.
func (m Matrix) Clone() Matrix {
	c := Matrix{rows: m.rows, cols: m.cols, data: make([]byte, len(m.data))}
	copy(c.data, m.data)
	return c
}

// Equal reports whether m and o have the same shape and entries.
func (m Matrix) Equal(o Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.data {
		if o.data[i] != v {
			return false
		}
	}
	return true
}

// String renders the matrix in a compact bracketed form for debugging.
func (m Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", m.At(i, j))
		}
	}
	b.WriteByte(']')
	return b.String()
}

// Mul returns the matrix product m * o. The inner dimensions must agree.
func (m Matrix) Mul(o Matrix) Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("matrix: cannot multiply %dx%d by %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	p := New(m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.Row(i)
		prow := p.Row(i)
		for l := 0; l < m.cols; l++ {
			if mrow[l] == 0 {
				continue
			}
			gf.MulAddSlice(mrow[l], prow, o.Row(l))
		}
	}
	return p
}

// MulVec returns the matrix-vector product m * x. len(x) must equal the
// column count.
func (m Matrix) MulVec(x []byte) []byte {
	if len(x) != m.cols {
		panic(fmt.Sprintf("matrix: vector length %d does not match %d columns", len(x), m.cols))
	}
	y := make([]byte, m.rows)
	for i := 0; i < m.rows; i++ {
		y[i] = gf.DotSlice(m.Row(i), x)
	}
	return y
}

// MulBlocks applies m to a block vector: blocks[j] is the j-th symbol as a
// byte block, and the result's i-th block is sum_j m[i][j]*blocks[j]
// computed byte-wise. All blocks must have equal length. This is the
// striped-object encoding primitive.
func (m Matrix) MulBlocks(blocks [][]byte) [][]byte {
	if len(blocks) != m.cols {
		panic(fmt.Sprintf("matrix: block count %d does not match %d columns", len(blocks), m.cols))
	}
	blockLen := 0
	if len(blocks) > 0 {
		blockLen = len(blocks[0])
	}
	for j, b := range blocks {
		if len(b) != blockLen {
			panic(fmt.Sprintf("matrix: block %d has length %d, want %d", j, len(b), blockLen))
		}
	}
	out := make([][]byte, m.rows)
	for i := 0; i < m.rows; i++ {
		acc := make([]byte, blockLen)
		row := m.Row(i)
		for j, c := range row {
			gf.MulAddSlice(c, acc, blocks[j])
		}
		out[i] = acc
	}
	return out
}

// SelectRows returns a new matrix formed by the given rows of m, in order.
// Row indices may repeat.
func (m Matrix) SelectRows(idx []int) Matrix {
	s := New(len(idx), m.cols)
	for i, r := range idx {
		copy(s.Row(i), m.Row(r))
	}
	return s
}

// SelectCols returns a new matrix formed by the given columns of m, in
// order. Column indices may repeat.
func (m Matrix) SelectCols(idx []int) Matrix {
	s := New(m.rows, len(idx))
	for i := 0; i < m.rows; i++ {
		src := m.Row(i)
		dst := s.Row(i)
		for j, c := range idx {
			if c < 0 || c >= m.cols {
				panic(fmt.Sprintf("matrix: column %d out of range for %dx%d matrix", c, m.rows, m.cols))
			}
			dst[j] = src[c]
		}
	}
	return s
}

// Stack returns the vertical concatenation [m; o]. Column counts must
// agree.
func (m Matrix) Stack(o Matrix) Matrix {
	if m.cols != o.cols {
		panic(fmt.Sprintf("matrix: cannot stack %dx%d on %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	s := New(m.rows+o.rows, m.cols)
	copy(s.data, m.data)
	copy(s.data[m.rows*m.cols:], o.data)
	return s
}

// Inverse returns the inverse of a square matrix via Gauss-Jordan
// elimination, or ErrSingular if none exists.
func (m Matrix) Inverse() (Matrix, error) {
	if m.rows != m.cols {
		return Matrix{}, fmt.Errorf("matrix: cannot invert non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if a.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return Matrix{}, ErrSingular
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		if p := a.At(col, col); p != 1 {
			scale := gf.Inv(p)
			gf.MulSlice(scale, a.Row(col), a.Row(col))
			gf.MulSlice(scale, inv.Row(col), inv.Row(col))
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if f := a.At(r, col); f != 0 {
				gf.MulAddSlice(f, a.Row(r), a.Row(col))
				gf.MulAddSlice(f, inv.Row(r), inv.Row(col))
			}
		}
	}
	return inv, nil
}

// Rank returns the rank of m.
func (m Matrix) Rank() int {
	a := m.Clone()
	rank := 0
	for col := 0; col < a.cols && rank < a.rows; col++ {
		pivot := -1
		for r := rank; r < a.rows; r++ {
			if a.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		if pivot != rank {
			swapRows(a, pivot, rank)
		}
		scale := gf.Inv(a.At(rank, col))
		gf.MulSlice(scale, a.Row(rank), a.Row(rank))
		for r := 0; r < a.rows; r++ {
			if r == rank {
				continue
			}
			if f := a.At(r, col); f != 0 {
				gf.MulAddSlice(f, a.Row(r), a.Row(rank))
			}
		}
		rank++
	}
	return rank
}

// Invertible reports whether the square matrix m has an inverse.
func (m Matrix) Invertible() bool {
	if m.rows != m.cols {
		return false
	}
	return m.Rank() == m.rows
}

// Solve solves the square system m * x = y, returning x, or ErrSingular if
// m is not invertible.
func (m Matrix) Solve(y []byte) ([]byte, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.MulVec(y), nil
}

func swapRows(m Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}
