// Package matrix implements dense matrix algebra over GF(2^8) as needed by
// the SEC erasure codes: multiplication, Gauss-Jordan inversion, rank,
// sub-matrix selection, and the Cauchy/Vandermonde constructions whose
// square-submatrix properties give the paper's design Criteria 1 and 2.
package matrix

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/secarchive/sec/internal/gf"
)

// ErrSingular is returned when an operation requires an invertible matrix
// but the input has no inverse.
var ErrSingular = errors.New("matrix: singular matrix")

// Matrix is a dense rows x cols matrix over GF(2^8), stored row-major.
// The zero value is an empty 0x0 matrix.
type Matrix struct {
	rows, cols int
	data       []byte
}

// New returns a zero-filled rows x cols matrix. It panics if either
// dimension is negative.
func New(rows, cols int) Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: negative dimension %dx%d", rows, cols))
	}
	return Matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

// FromRows builds a matrix from row slices. All rows must have equal length.
// The data is copied.
func FromRows(rows [][]byte) (Matrix, error) {
	if len(rows) == 0 {
		return Matrix{}, nil
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return Matrix{}, fmt.Errorf("matrix: ragged rows: row 0 has %d columns, row %d has %d", cols, i, len(r))
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// Identity returns the n x n identity matrix.
func Identity(n int) Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Cauchy returns the n x k Cauchy matrix with entries 1/(h_i - f_j) built
// from the canonical point sets h_i = i (0 <= i < n) and f_j = n+j
// (0 <= j < k). Every square submatrix of a Cauchy matrix is invertible
// (Lacan & Fimes), which is exactly what SEC's Criteria 1 and 2 require.
// It fails if n+k exceeds the field order.
func Cauchy(n, k int) (Matrix, error) {
	if n <= 0 || k <= 0 {
		return Matrix{}, fmt.Errorf("matrix: Cauchy dimensions must be positive, got %dx%d", n, k)
	}
	if n+k > gf.Order {
		return Matrix{}, fmt.Errorf("matrix: Cauchy needs n+k <= %d distinct field points, got n=%d k=%d", gf.Order, n, k)
	}
	hs := make([]byte, n)
	fs := make([]byte, k)
	for i := range hs {
		hs[i] = byte(i)
	}
	for j := range fs {
		fs[j] = byte(n + j)
	}
	return CauchyWith(hs, fs)
}

// CauchyWith returns the Cauchy matrix for explicit point sets: entry (i,j)
// is 1/(hs[i] + fs[j]) (addition is subtraction in characteristic 2). The
// points must be pairwise distinct across the union of hs and fs.
func CauchyWith(hs, fs []byte) (Matrix, error) {
	seen := make(map[byte]bool, len(hs)+len(fs))
	for _, p := range hs {
		if seen[p] {
			return Matrix{}, fmt.Errorf("matrix: duplicate Cauchy point %d", p)
		}
		seen[p] = true
	}
	for _, p := range fs {
		if seen[p] {
			return Matrix{}, fmt.Errorf("matrix: duplicate Cauchy point %d", p)
		}
		seen[p] = true
	}
	m := New(len(hs), len(fs))
	for i, h := range hs {
		row := m.Row(i)
		for j, f := range fs {
			row[j] = gf.Inv(h ^ f)
		}
	}
	return m, nil
}

// Vandermonde returns the n x k Vandermonde matrix with rows
// [1, a_i, a_i^2, ..., a_i^(k-1)] for a_i = alpha^i, alpha the field
// generator. With n <= 255 the evaluation points are pairwise distinct, so
// every k x k submatrix is invertible and the matrix generates an MDS code.
// The geometric structure additionally enables Berlekamp-Massey syndrome
// decoding in the sparse package.
func Vandermonde(n, k int) (Matrix, error) {
	if n <= 0 || k <= 0 {
		return Matrix{}, fmt.Errorf("matrix: Vandermonde dimensions must be positive, got %dx%d", n, k)
	}
	if n > gf.Order-1 {
		return Matrix{}, fmt.Errorf("matrix: Vandermonde needs n <= %d distinct non-zero points, got n=%d", gf.Order-1, n)
	}
	m := New(n, k)
	for i := 0; i < n; i++ {
		a := gf.Exp(i)
		row := m.Row(i)
		for j := 0; j < k; j++ {
			row[j] = gf.Pow(a, j)
		}
	}
	return m, nil
}

// Rows returns the number of rows.
func (m Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m Matrix) Cols() int { return m.cols }

// At returns the entry at row i, column j.
func (m Matrix) At(i, j int) byte {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the entry at row i, column j.
func (m Matrix) Set(i, j int, v byte) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice aliasing the matrix storage. Mutating the
// slice mutates the matrix.
func (m Matrix) Row(i int) []byte {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy of m.
func (m Matrix) Clone() Matrix {
	c := Matrix{rows: m.rows, cols: m.cols, data: make([]byte, len(m.data))}
	copy(c.data, m.data)
	return c
}

// Equal reports whether m and o have the same shape and entries.
func (m Matrix) Equal(o Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i, v := range m.data {
		if o.data[i] != v {
			return false
		}
	}
	return true
}

// String renders the matrix in a compact bracketed form for debugging.
func (m Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%dx%d[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			b.WriteString("; ")
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", m.At(i, j))
		}
	}
	b.WriteByte(']')
	return b.String()
}

// Mul returns the matrix product m * o. The inner dimensions must agree.
func (m Matrix) Mul(o Matrix) Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("matrix: cannot multiply %dx%d by %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	p := New(m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		mrow := m.Row(i)
		prow := p.Row(i)
		for l := 0; l < m.cols; l++ {
			if mrow[l] == 0 {
				continue
			}
			gf.MulAddSlice(mrow[l], prow, o.Row(l))
		}
	}
	return p
}

// MulVec returns the matrix-vector product m * x. len(x) must equal the
// column count.
func (m Matrix) MulVec(x []byte) []byte {
	if len(x) != m.cols {
		panic(fmt.Sprintf("matrix: vector length %d does not match %d columns", len(x), m.cols))
	}
	y := make([]byte, m.rows)
	for i := 0; i < m.rows; i++ {
		y[i] = gf.DotSlice(m.Row(i), x)
	}
	return y
}

// Parallel block-multiply tuning: MulBlocksInto stays sequential below
// mulBlocksParallelMin bytes of output (goroutine fan-out costs more than it
// saves on small codewords) and above it splits the block byte range into
// chunks handed to at most GOMAXPROCS workers. Chunks shrink below
// mulBlocksChunk when needed to give every worker a share of the byte range
// (but never below mulBlocksMinChunk, so tiny chunks don't drown the work
// in coordination); the cap bounds the working set per pass (all rows of
// one chunk touch (rows+cols)*chunk bytes), keeping the streamed operands
// cache-resident.
const (
	mulBlocksParallelMin = 256 << 10
	mulBlocksChunk       = 64 << 10
	mulBlocksMinChunk    = 4 << 10
)

// mulBlocksJob carries one MulBlocksInto call's state to its workers.
// Jobs are pooled so steady-state encoding does not allocate.
type mulBlocksJob struct {
	m        Matrix
	blocks   [][]byte
	dst      [][]byte
	blockLen int
	chunk    int
	chunks   int64
	next     atomic.Int64
	wg       sync.WaitGroup
}

var mulBlocksJobs = sync.Pool{New: func() any { return new(mulBlocksJob) }}

// MulBlocks applies m to a block vector: blocks[j] is the j-th symbol as a
// byte block, and the result's i-th block is sum_j m[i][j]*blocks[j]
// computed byte-wise. All blocks must have equal length. This is the
// striped-object encoding primitive.
func (m Matrix) MulBlocks(blocks [][]byte) [][]byte {
	blockLen := m.checkBlocks(blocks)
	out := make([][]byte, m.rows)
	flat := make([]byte, m.rows*blockLen)
	for i := range out {
		out[i] = flat[i*blockLen : (i+1)*blockLen : (i+1)*blockLen]
	}
	m.mulBlocksInto(blocks, out, blockLen)
	return out
}

// MulBlocksInto is MulBlocks without the result allocation: it overwrites
// dst, which must hold m.Rows() blocks of the input block length. dst must
// not alias blocks. Large block lengths are processed in cache-friendly
// chunks by up to GOMAXPROCS goroutines; the call does not allocate in
// steady state.
func (m Matrix) MulBlocksInto(blocks, dst [][]byte) {
	blockLen := m.checkBlocks(blocks)
	if len(dst) != m.rows {
		panic(fmt.Sprintf("matrix: destination block count %d does not match %d rows", len(dst), m.rows))
	}
	for i, d := range dst {
		if len(d) != blockLen {
			panic(fmt.Sprintf("matrix: destination block %d has length %d, want %d", i, len(d), blockLen))
		}
	}
	m.mulBlocksInto(blocks, dst, blockLen)
}

func (m Matrix) mulBlocksInto(blocks, dst [][]byte, blockLen int) {
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 || m.rows*blockLen < mulBlocksParallelMin {
		m.mulBlocksRange(blocks, dst, 0, blockLen)
		return
	}
	// Size chunks so every worker gets a share of the byte range, within
	// the [mulBlocksMinChunk, mulBlocksChunk] bounds, rounded to whole
	// cache lines so workers do not share dirty lines at chunk seams.
	chunk := (blockLen + workers - 1) / workers
	if chunk > mulBlocksChunk {
		chunk = mulBlocksChunk
	}
	if chunk < mulBlocksMinChunk {
		chunk = mulBlocksMinChunk
	}
	chunk = (chunk + 63) &^ 63
	chunks := (blockLen + chunk - 1) / chunk
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		m.mulBlocksRange(blocks, dst, 0, blockLen)
		return
	}
	job := mulBlocksJobs.Get().(*mulBlocksJob)
	job.m, job.blocks, job.dst = m, blocks, dst
	job.blockLen = blockLen
	job.chunk = chunk
	job.chunks = int64(chunks)
	job.next.Store(0)
	job.wg.Add(workers - 1)
	for w := 1; w < workers; w++ {
		go mulBlocksWorker(job)
	}
	job.runChunks()
	job.wg.Wait()
	job.m, job.blocks, job.dst = Matrix{}, nil, nil
	mulBlocksJobs.Put(job)
}

func mulBlocksWorker(job *mulBlocksJob) {
	defer job.wg.Done()
	job.runChunks()
}

// runChunks claims chunks off the shared counter until none remain.
func (job *mulBlocksJob) runChunks() {
	for {
		c := job.next.Add(1) - 1
		if c >= job.chunks {
			return
		}
		lo := int(c) * job.chunk
		hi := lo + job.chunk
		if hi > job.blockLen {
			hi = job.blockLen
		}
		job.m.mulBlocksRange(job.blocks, job.dst, lo, hi)
	}
}

// mulBlocksRange computes the product on the byte range [lo,hi) of every
// block.
func (m Matrix) mulBlocksRange(blocks, dst [][]byte, lo, hi int) {
	for i := 0; i < m.rows; i++ {
		acc := dst[i][lo:hi]
		if m.cols == 0 {
			clear(acc)
			continue
		}
		row := m.Row(i)
		gf.MulSlice(row[0], acc, blocks[0][lo:hi])
		for j := 1; j < m.cols; j++ {
			gf.MulAddSlice(row[j], acc, blocks[j][lo:hi])
		}
	}
}

// checkBlocks validates a block vector argument against the column count
// and returns the uniform block length.
func (m Matrix) checkBlocks(blocks [][]byte) int {
	if len(blocks) != m.cols {
		panic(fmt.Sprintf("matrix: block count %d does not match %d columns", len(blocks), m.cols))
	}
	blockLen := 0
	if len(blocks) > 0 {
		blockLen = len(blocks[0])
	}
	for j, b := range blocks {
		if len(b) != blockLen {
			panic(fmt.Sprintf("matrix: block %d has length %d, want %d", j, len(b), blockLen))
		}
	}
	return blockLen
}

// SelectRows returns a new matrix formed by the given rows of m, in order.
// Row indices may repeat.
func (m Matrix) SelectRows(idx []int) Matrix {
	s := New(len(idx), m.cols)
	for i, r := range idx {
		copy(s.Row(i), m.Row(r))
	}
	return s
}

// SelectCols returns a new matrix formed by the given columns of m, in
// order. Column indices may repeat.
func (m Matrix) SelectCols(idx []int) Matrix {
	s := New(m.rows, len(idx))
	for i := 0; i < m.rows; i++ {
		src := m.Row(i)
		dst := s.Row(i)
		for j, c := range idx {
			if c < 0 || c >= m.cols {
				panic(fmt.Sprintf("matrix: column %d out of range for %dx%d matrix", c, m.rows, m.cols))
			}
			dst[j] = src[c]
		}
	}
	return s
}

// SelectColsInto writes the given columns of m into dst, reshaping dst to
// m.Rows() x len(idx) and reusing its storage when large enough. It is the
// allocation-free variant of SelectCols for hot decode loops.
func (m Matrix) SelectColsInto(idx []int, dst *Matrix) {
	need := m.rows * len(idx)
	if cap(dst.data) < need {
		dst.data = make([]byte, need)
	}
	dst.data = dst.data[:need]
	dst.rows, dst.cols = m.rows, len(idx)
	for i := 0; i < m.rows; i++ {
		src := m.Row(i)
		out := dst.Row(i)
		for j, c := range idx {
			if c < 0 || c >= m.cols {
				panic(fmt.Sprintf("matrix: column %d out of range for %dx%d matrix", c, m.rows, m.cols))
			}
			out[j] = src[c]
		}
	}
}

// Stack returns the vertical concatenation [m; o]. Column counts must
// agree.
func (m Matrix) Stack(o Matrix) Matrix {
	if m.cols != o.cols {
		panic(fmt.Sprintf("matrix: cannot stack %dx%d on %dx%d", m.rows, m.cols, o.rows, o.cols))
	}
	s := New(m.rows+o.rows, m.cols)
	copy(s.data, m.data)
	copy(s.data[m.rows*m.cols:], o.data)
	return s
}

// Inverse returns the inverse of a square matrix via Gauss-Jordan
// elimination, or ErrSingular if none exists.
func (m Matrix) Inverse() (Matrix, error) {
	if m.rows != m.cols {
		return Matrix{}, fmt.Errorf("matrix: cannot invert non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if a.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return Matrix{}, ErrSingular
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		if p := a.At(col, col); p != 1 {
			scale := gf.Inv(p)
			gf.MulSlice(scale, a.Row(col), a.Row(col))
			gf.MulSlice(scale, inv.Row(col), inv.Row(col))
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			if f := a.At(r, col); f != 0 {
				gf.MulAddSlice(f, a.Row(r), a.Row(col))
				gf.MulAddSlice(f, inv.Row(r), inv.Row(col))
			}
		}
	}
	return inv, nil
}

// Rank returns the rank of m.
func (m Matrix) Rank() int {
	a := m.Clone()
	rank := 0
	for col := 0; col < a.cols && rank < a.rows; col++ {
		pivot := -1
		for r := rank; r < a.rows; r++ {
			if a.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		if pivot != rank {
			swapRows(a, pivot, rank)
		}
		scale := gf.Inv(a.At(rank, col))
		gf.MulSlice(scale, a.Row(rank), a.Row(rank))
		for r := 0; r < a.rows; r++ {
			if r == rank {
				continue
			}
			if f := a.At(r, col); f != 0 {
				gf.MulAddSlice(f, a.Row(r), a.Row(rank))
			}
		}
		rank++
	}
	return rank
}

// Invertible reports whether the square matrix m has an inverse.
func (m Matrix) Invertible() bool {
	if m.rows != m.cols {
		return false
	}
	return m.Rank() == m.rows
}

// Solve solves the square system m * x = y, returning x, or ErrSingular if
// m is not invertible.
func (m Matrix) Solve(y []byte) ([]byte, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.MulVec(y), nil
}

func swapRows(m Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for c := range ri {
		ri[c], rj[c] = rj[c], ri[c]
	}
}
