package matrix

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"
)

// TestMulBlocksIntoParallelMatchesSequential forces the chunked parallel
// path (big blocks, several workers) and checks it agrees with the
// sequential range computation. GOMAXPROCS is raised so the test covers the
// worker pool even on single-CPU machines.
func TestMulBlocksIntoParallelMatchesSequential(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	const rows, cols = 6, 4
	blockLen := mulBlocksChunk*3 + 123 // several chunks plus an unaligned tail
	if rows*blockLen < mulBlocksParallelMin {
		t.Fatalf("test workload below parallel threshold: %d < %d", rows*blockLen, mulBlocksParallelMin)
	}
	rng := rand.New(rand.NewSource(31))
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		rng.Read(m.Row(i))
	}
	blocks := make([][]byte, cols)
	for j := range blocks {
		blocks[j] = make([]byte, blockLen)
		rng.Read(blocks[j])
	}

	want := make([][]byte, rows)
	for i := range want {
		want[i] = make([]byte, blockLen)
	}
	m.mulBlocksRange(blocks, want, 0, blockLen)

	dst := make([][]byte, rows)
	for i := range dst {
		dst[i] = make([]byte, blockLen)
	}
	// Run twice so the second call reuses a pooled job.
	for pass := 0; pass < 2; pass++ {
		for i := range dst {
			clear(dst[i])
		}
		m.MulBlocksInto(blocks, dst)
		for i := range want {
			if !bytes.Equal(dst[i], want[i]) {
				t.Fatalf("pass %d: parallel MulBlocksInto row %d differs from sequential", pass, i)
			}
		}
	}

	// MulBlocks must agree as well (it shares the same dispatch).
	out := m.MulBlocks(blocks)
	for i := range want {
		if !bytes.Equal(out[i], want[i]) {
			t.Fatalf("MulBlocks row %d differs from sequential", i)
		}
	}
}

// TestMulBlocksIntoValidation checks the Into variant panics on shape
// mismatches like the allocating API does.
func TestMulBlocksIntoValidation(t *testing.T) {
	m := New(2, 3)
	blocks := [][]byte{make([]byte, 4), make([]byte, 4), make([]byte, 4)}
	for _, tc := range []struct {
		name string
		dst  [][]byte
	}{
		{"wrong count", [][]byte{make([]byte, 4)}},
		{"wrong length", [][]byte{make([]byte, 4), make([]byte, 5)}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: MulBlocksInto did not panic", tc.name)
				}
			}()
			m.MulBlocksInto(blocks, tc.dst)
		}()
	}
}
