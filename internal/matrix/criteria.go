package matrix

import "fmt"

// This file implements the SEC design-criteria checks from Section III of
// the paper:
//
//   Criterion 1: at least one k x k submatrix of the generator is full
//   rank (retrieves x_1 and any non-sparse delta).
//
//   Criterion 2: a 2*gamma x k row-submatrix has every set of 2*gamma
//   columns linearly independent; by Proposition 1 such a submatrix
//   uniquely determines any gamma-sparse delta.

// Combinations visits every size-r subset of {0,...,n-1} in lexicographic
// order, calling fn with a reused index slice (copy it to retain). If fn
// returns false, enumeration stops early. It panics if r is negative or
// exceeds n.
func Combinations(n, r int, fn func(idx []int) bool) {
	if r < 0 || r > n {
		panic(fmt.Sprintf("matrix: invalid combination size %d of %d", r, n))
	}
	idx := make([]int, r)
	for i := range idx {
		idx[i] = i
	}
	for {
		if !fn(idx) {
			return
		}
		// Advance to the next combination.
		i := r - 1
		for i >= 0 && idx[i] == n-r+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < r; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// CountCombinations returns the binomial coefficient C(n, r) as an int. It
// panics on overflow, which cannot occur for the code sizes used here.
func CountCombinations(n, r int) int {
	if r < 0 || r > n {
		return 0
	}
	if r > n-r {
		r = n - r
	}
	c := 1
	for i := 0; i < r; i++ {
		nc := c * (n - i)
		if nc/(n-i) != c {
			panic("matrix: binomial coefficient overflow")
		}
		c = nc / (i + 1)
	}
	return c
}

// ColumnsIndependent reports whether every set of m.Rows() columns of m is
// linearly independent, i.e. every maximal square column-submatrix is
// invertible. This is the paper's Criterion 2 applied to a chosen
// 2*gamma-row submatrix. It requires Rows() <= Cols().
func (m Matrix) ColumnsIndependent() bool {
	r := m.rows
	if r == 0 {
		return true
	}
	if r > m.cols {
		return false
	}
	ok := true
	Combinations(m.cols, r, func(idx []int) bool {
		if !m.SelectCols(idx).Invertible() {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// IsMDSGenerator reports whether the n x k matrix m generates an MDS code:
// every k x k row-submatrix is invertible, so any k of the n coded symbols
// reconstruct the data (and in particular Criterion 1 holds). It requires
// Rows() >= Cols().
func (m Matrix) IsMDSGenerator() bool {
	k := m.cols
	if m.rows < k {
		return false
	}
	ok := true
	Combinations(m.rows, k, func(idx []int) bool {
		if !m.SelectRows(idx).Invertible() {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// SatisfiesCriterion1 reports whether at least one k x k row-submatrix of m
// is invertible. Any MDS generator satisfies it trivially; the check exists
// for puncturing experiments where MDS-ness may be given up.
func (m Matrix) SatisfiesCriterion1() bool {
	k := m.cols
	if m.rows < k {
		return false
	}
	found := false
	Combinations(m.rows, k, func(idx []int) bool {
		if m.SelectRows(idx).Invertible() {
			found = true
			return false
		}
		return true
	})
	return found
}

// Criterion2Rows returns every set of rowCount row indices of m whose
// row-submatrix satisfies Criterion 2 (all rowCount-column subsets
// independent). The paper counts these sets to compare systematic and
// non-systematic SEC: for the (6,3) code with gamma=1 there are 15 for the
// Cauchy generator and 3 for the systematic one.
func (m Matrix) Criterion2Rows(rowCount int) [][]int {
	if rowCount < 0 || rowCount > m.rows {
		panic(fmt.Sprintf("matrix: invalid Criterion 2 row count %d of %d", rowCount, m.rows))
	}
	var sets [][]int
	Combinations(m.rows, rowCount, func(idx []int) bool {
		sub := m.SelectRows(idx)
		if sub.ColumnsIndependent() {
			cp := make([]int, len(idx))
			copy(cp, idx)
			sets = append(sets, cp)
		}
		return true
	})
	return sets
}
