package matrix

import (
	"errors"
	"math/rand"
	"testing"

	"github.com/secarchive/sec/internal/gf"
)

func randMatrix(rng *rand.Rand, rows, cols int) Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] = byte(rng.Intn(256))
		}
	}
	return m
}

func randInvertible(rng *rand.Rand, n int) Matrix {
	for {
		m := randMatrix(rng, n, n)
		if m.Invertible() {
			return m
		}
	}
}

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 42)
	if got := m.At(1, 2); got != 42 {
		t.Errorf("At(1,2) = %d, want 42", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Errorf("At(0,0) = %d, want 0", got)
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1,2) did not panic")
		}
	}()
	New(-1, 2)
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("At(2,0) did not panic")
		}
	}()
	m.At(2, 0)
}

func TestFromRows(t *testing.T) {
	m, err := FromRows([][]byte{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Errorf("FromRows content mismatch: %v", m)
	}

	if _, err := FromRows([][]byte{{1, 2}, {3}}); err == nil {
		t.Error("FromRows with ragged rows: want error, got nil")
	}

	empty, err := FromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Rows() != 0 {
		t.Errorf("FromRows(nil).Rows() = %d, want 0", empty.Rows())
	}
}

func TestFromRowsCopies(t *testing.T) {
	src := [][]byte{{1, 2}}
	m, err := FromRows(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0][0] = 99
	if m.At(0, 0) != 1 {
		t.Error("FromRows did not copy its input")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := byte(0)
			if i == j {
				want = 1
			}
			if got := id.At(i, j); got != want {
				t.Errorf("Identity(4)[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestCauchyEntries(t *testing.T) {
	m, err := Cauchy(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Entry (i,j) must be Inv(i ^ (n+j)).
	for i := 0; i < 3; i++ {
		for j := 0; j < 2; j++ {
			want := gf.Inv(byte(i) ^ byte(3+j))
			if got := m.At(i, j); got != want {
				t.Errorf("Cauchy[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestCauchyErrors(t *testing.T) {
	tests := []struct {
		name string
		n, k int
	}{
		{"zero rows", 0, 3},
		{"zero cols", 3, 0},
		{"field exhausted", 200, 57},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Cauchy(tt.n, tt.k); err == nil {
				t.Errorf("Cauchy(%d,%d): want error, got nil", tt.n, tt.k)
			}
		})
	}
}

func TestCauchyWithDuplicatePoints(t *testing.T) {
	if _, err := CauchyWith([]byte{1, 2}, []byte{2, 3}); err == nil {
		t.Error("CauchyWith with shared point: want error, got nil")
	}
	if _, err := CauchyWith([]byte{1, 1}, []byte{2}); err == nil {
		t.Error("CauchyWith with duplicate h point: want error, got nil")
	}
}

func TestCauchyEverySquareSubmatrixInvertible(t *testing.T) {
	// The defining property (Lacan-Fimes) behind both SEC criteria.
	m, err := Cauchy(6, 4)
	if err != nil {
		t.Fatal(err)
	}
	for size := 1; size <= 4; size++ {
		Combinations(6, size, func(ridx []int) bool {
			rows := append([]int(nil), ridx...)
			Combinations(4, size, func(cidx []int) bool {
				sub := m.SelectRows(rows).SelectCols(cidx)
				if !sub.Invertible() {
					t.Errorf("Cauchy %dx%d submatrix rows=%v cols=%v is singular", size, size, rows, cidx)
				}
				return true
			})
			return true
		})
	}
}

func TestVandermondeMDS(t *testing.T) {
	m, err := Vandermonde(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !m.IsMDSGenerator() {
		t.Error("Vandermonde(6,3) is not MDS")
	}
}

func TestVandermondeErrors(t *testing.T) {
	if _, err := Vandermonde(0, 3); err == nil {
		t.Error("Vandermonde(0,3): want error")
	}
	if _, err := Vandermonde(256, 3); err == nil {
		t.Error("Vandermonde(256,3): want error (points repeat)")
	}
}

func TestMulAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		a := randMatrix(rng, 1+rng.Intn(5), 1+rng.Intn(5))
		b := randMatrix(rng, a.Cols(), 1+rng.Intn(5))
		got := a.Mul(b)
		for i := 0; i < a.Rows(); i++ {
			for j := 0; j < b.Cols(); j++ {
				var want byte
				for l := 0; l < a.Cols(); l++ {
					want ^= gf.Mul(a.At(i, l), b.At(l, j))
				}
				if got.At(i, j) != want {
					t.Fatalf("trial %d: product[%d][%d] = %d, want %d", trial, i, j, got.At(i, j), want)
				}
			}
		}
	}
}

func TestMulIdentityLaw(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randMatrix(rng, 4, 6)
	if got := Identity(4).Mul(m); !got.Equal(m) {
		t.Error("I*M != M")
	}
	if got := m.Mul(Identity(6)); !got.Equal(m) {
		t.Error("M*I != M")
	}
}

func TestMulShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Mul did not panic")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestMulVec(t *testing.T) {
	m, err := FromRows([][]byte{{1, 2, 3}, {0, 1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	x := []byte{5, 6, 7}
	y := m.MulVec(x)
	want0 := gf.Mul(1, 5) ^ gf.Mul(2, 6) ^ gf.Mul(3, 7)
	if y[0] != want0 || y[1] != 6 {
		t.Errorf("MulVec = %v, want [%d 6]", y, want0)
	}
}

func TestMulBlocksMatchesMulVecPerPosition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randMatrix(rng, 5, 3)
	const blockLen = 16
	blocks := make([][]byte, 3)
	for j := range blocks {
		blocks[j] = make([]byte, blockLen)
		rng.Read(blocks[j])
	}
	out := m.MulBlocks(blocks)
	for pos := 0; pos < blockLen; pos++ {
		x := []byte{blocks[0][pos], blocks[1][pos], blocks[2][pos]}
		y := m.MulVec(x)
		for i := range out {
			if out[i][pos] != y[i] {
				t.Fatalf("MulBlocks[%d][%d] = %d, MulVec gives %d", i, pos, out[i][pos], y[i])
			}
		}
	}
}

func TestMulBlocksRaggedPanics(t *testing.T) {
	m := Identity(2)
	defer func() {
		if recover() == nil {
			t.Fatal("ragged MulBlocks did not panic")
		}
	}()
	m.MulBlocks([][]byte{{1, 2}, {3}})
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(8)
		m := randInvertible(rng, n)
		inv, err := m.Inverse()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !m.Mul(inv).Equal(Identity(n)) {
			t.Fatalf("trial %d: M*M^-1 != I", trial)
		}
		if !inv.Mul(m).Equal(Identity(n)) {
			t.Fatalf("trial %d: M^-1*M != I", trial)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	m, err := FromRows([][]byte{{1, 2}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Inverse(); !errors.Is(err, ErrSingular) {
		t.Errorf("Inverse of singular matrix: err = %v, want ErrSingular", err)
	}
}

func TestInverseNonSquare(t *testing.T) {
	if _, err := New(2, 3).Inverse(); err == nil {
		t.Error("Inverse of non-square matrix: want error")
	}
}

func TestRank(t *testing.T) {
	tests := []struct {
		name string
		rows [][]byte
		want int
	}{
		{"zero matrix", [][]byte{{0, 0}, {0, 0}}, 0},
		{"identity", [][]byte{{1, 0}, {0, 1}}, 2},
		{"duplicate rows", [][]byte{{1, 2, 3}, {1, 2, 3}}, 1},
		{"scaled row (gf)", [][]byte{{1, 2}, {gf.Mul(7, 1), gf.Mul(7, 2)}}, 1},
		{"wide full rank", [][]byte{{1, 0, 5}, {0, 1, 9}}, 2},
		{"tall rank 1", [][]byte{{1}, {2}, {3}}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := FromRows(tt.rows)
			if err != nil {
				t.Fatal(err)
			}
			if got := m.Rank(); got != tt.want {
				t.Errorf("Rank = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randInvertible(rng, 5)
	x := make([]byte, 5)
	rng.Read(x)
	y := m.MulVec(x)
	got, err := m.Solve(y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("Solve = %v, want %v", got, x)
		}
	}
}

func TestSelectRowsAndCols(t *testing.T) {
	m, err := FromRows([][]byte{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	if err != nil {
		t.Fatal(err)
	}
	r := m.SelectRows([]int{2, 0})
	if r.At(0, 0) != 7 || r.At(1, 2) != 3 {
		t.Errorf("SelectRows content mismatch: %v", r)
	}
	c := m.SelectCols([]int{1})
	if c.Rows() != 3 || c.Cols() != 1 || c.At(2, 0) != 8 {
		t.Errorf("SelectCols content mismatch: %v", c)
	}
}

func TestSelectRowsIsACopy(t *testing.T) {
	m := Identity(2)
	s := m.SelectRows([]int{0})
	s.Set(0, 0, 77)
	if m.At(0, 0) != 1 {
		t.Error("SelectRows aliases the source matrix")
	}
}

func TestStack(t *testing.T) {
	top := Identity(2)
	bottom, err := FromRows([][]byte{{5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	s := top.Stack(bottom)
	if s.Rows() != 3 || s.At(2, 1) != 6 || s.At(0, 0) != 1 {
		t.Errorf("Stack content mismatch: %v", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := Identity(2)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases the source matrix")
	}
}

func TestString(t *testing.T) {
	m, err := FromRows([][]byte{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.String(), "2x2[1 2; 3 4]"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}
