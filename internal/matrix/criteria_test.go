package matrix

import (
	"reflect"
	"testing"
)

func TestCombinationsEnumeration(t *testing.T) {
	var got [][]int
	Combinations(4, 2, func(idx []int) bool {
		got = append(got, append([]int(nil), idx...))
		return true
	})
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Combinations(4,2) = %v, want %v", got, want)
	}
}

func TestCombinationsEdgeCases(t *testing.T) {
	count := 0
	Combinations(3, 0, func(idx []int) bool {
		if len(idx) != 0 {
			t.Errorf("size-0 combination has %d elements", len(idx))
		}
		count++
		return true
	})
	if count != 1 {
		t.Errorf("Combinations(3,0) visited %d subsets, want 1", count)
	}

	count = 0
	Combinations(3, 3, func(idx []int) bool {
		count++
		return true
	})
	if count != 1 {
		t.Errorf("Combinations(3,3) visited %d subsets, want 1", count)
	}
}

func TestCombinationsEarlyStop(t *testing.T) {
	count := 0
	Combinations(5, 2, func(idx []int) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early-stopped enumeration visited %d subsets, want 3", count)
	}
}

func TestCombinationsInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Combinations(2,3) did not panic")
		}
	}()
	Combinations(2, 3, func([]int) bool { return true })
}

func TestCombinationsCountsMatch(t *testing.T) {
	for n := 0; n <= 8; n++ {
		for r := 0; r <= n; r++ {
			count := 0
			Combinations(n, r, func([]int) bool { count++; return true })
			if want := CountCombinations(n, r); count != want {
				t.Errorf("Combinations(%d,%d) visited %d, CountCombinations gives %d", n, r, count, want)
			}
		}
	}
}

func TestCountCombinations(t *testing.T) {
	tests := []struct {
		n, r, want int
	}{
		{6, 3, 20},
		{6, 0, 1},
		{6, 6, 1},
		{6, 7, 0},
		{6, -1, 0},
		{20, 10, 184756},
	}
	for _, tt := range tests {
		if got := CountCombinations(tt.n, tt.r); got != tt.want {
			t.Errorf("CountCombinations(%d,%d) = %d, want %d", tt.n, tt.r, got, tt.want)
		}
	}
}

// systematic63 returns the generator G_S = [I_3; B] of the paper's (6,3)
// systematic example, with B the 3x3 Cauchy block.
func systematic63(t *testing.T) Matrix {
	t.Helper()
	b, err := Cauchy(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	return Identity(3).Stack(b)
}

func TestCauchyGeneratorIsMDS(t *testing.T) {
	g, err := Cauchy(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsMDSGenerator() {
		t.Error("Cauchy(6,3) generator is not MDS")
	}
	if !g.SatisfiesCriterion1() {
		t.Error("Cauchy(6,3) generator fails Criterion 1")
	}
}

func TestSystematicGeneratorIsMDS(t *testing.T) {
	// [I; B] with Cauchy B is MDS because every mixed k x k submatrix
	// reduces to a square Cauchy submatrix.
	g := systematic63(t)
	if !g.IsMDSGenerator() {
		t.Error("systematic [I;B] generator is not MDS")
	}
}

func TestColumnsIndependentCauchyRows(t *testing.T) {
	g, err := Cauchy(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Any 2-row submatrix of a Cauchy generator satisfies Criterion 2.
	Combinations(6, 2, func(idx []int) bool {
		if !g.SelectRows(idx).ColumnsIndependent() {
			t.Errorf("Cauchy rows %v fail Criterion 2", idx)
		}
		return true
	})
}

func TestColumnsIndependentIdentityRowsFail(t *testing.T) {
	g := systematic63(t)
	// Any pair involving an identity row has a 2x2 zero-column pattern.
	if g.SelectRows([]int{0, 1}).ColumnsIndependent() {
		t.Error("two identity rows claimed to satisfy Criterion 2")
	}
	if g.SelectRows([]int{0, 4}).ColumnsIndependent() {
		t.Error("identity+parity row pair claimed to satisfy Criterion 2")
	}
}

func TestColumnsIndependentShapes(t *testing.T) {
	if !New(0, 5).ColumnsIndependent() {
		t.Error("empty matrix should vacuously satisfy Criterion 2")
	}
	if New(3, 2).ColumnsIndependent() {
		t.Error("more rows than columns cannot satisfy Criterion 2")
	}
}

// TestCriterion2CountsMatchPaper reproduces the Section V-A counts: for
// gamma=1 (2-row submatrices), the non-systematic (6,3) Cauchy generator has
// 15 Criterion-2 submatrices, the systematic one only 3 (the parity pairs).
func TestCriterion2CountsMatchPaper(t *testing.T) {
	gn, err := Cauchy(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(gn.Criterion2Rows(2)); got != 15 {
		t.Errorf("non-systematic Criterion-2 submatrix count = %d, want 15 (paper SV-A)", got)
	}

	gs := systematic63(t)
	sets := gs.Criterion2Rows(2)
	if len(sets) != 3 {
		t.Fatalf("systematic Criterion-2 submatrix count = %d, want 3 (paper SV-A)", len(sets))
	}
	want := [][]int{{3, 4}, {3, 5}, {4, 5}}
	if !reflect.DeepEqual(sets, want) {
		t.Errorf("systematic Criterion-2 row sets = %v, want parity pairs %v", sets, want)
	}
}

func TestIsMDSGeneratorRejectsNonMDS(t *testing.T) {
	// A generator with a repeated row cannot be MDS.
	m, err := FromRows([][]byte{{1, 0}, {0, 1}, {1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if m.IsMDSGenerator() {
		t.Error("generator with duplicate rows claimed MDS")
	}
	if !m.SatisfiesCriterion1() {
		t.Error("generator with one invertible submatrix fails Criterion 1")
	}
}

func TestIsMDSGeneratorTooFewRows(t *testing.T) {
	if New(2, 3).IsMDSGenerator() {
		t.Error("matrix with fewer rows than columns claimed MDS")
	}
	if New(2, 3).SatisfiesCriterion1() {
		t.Error("matrix with fewer rows than columns claimed Criterion 1")
	}
}
