package gateway

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/secarchive/sec/internal/store"
	"github.com/secarchive/sec/internal/testutil"
	"github.com/secarchive/sec/internal/transport"
)

// testSpec is a small (6,4) archive shape every test shares.
func testSpec() transport.ArchiveSpec {
	return transport.ArchiveSpec{N: 6, K: 4, BlockSize: 8}
}

// payloadFor builds a deterministic capacity-sized object for a version.
func payloadFor(capacity, version int) []byte {
	p := make([]byte, capacity)
	for i := range p {
		p[i] = byte(i*31 + version*7 + 1)
	}
	return p
}

func newTestGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	// Every embedded-gateway test also asserts leak-free teardown; the
	// check is registered before the gateway's own cleanup so it runs
	// after it (t.Cleanup is LIFO).
	testutil.CheckGoroutineLeaks(t)
	if cfg.Cluster == nil {
		cfg.Cluster = store.NewMemCluster(6)
	}
	if cfg.Root == "" && cfg.ManifestPath == nil {
		cfg.Root = t.TempDir()
	}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = g.Close(context.Background()) })
	return g
}

func TestGatewayCreateCommitRetrieve(t *testing.T) {
	g := newTestGateway(t, Config{})
	ctx := t.Context()
	info, err := g.Create(ctx, "logs", testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if info.Manifest.Name != "logs" || info.Capacity != 32 || info.Versions != 0 {
		t.Fatalf("Create info = %+v", info)
	}
	for v := 1; v <= 3; v++ {
		ci, err := g.Commit(ctx, "logs", -1, payloadFor(32, v))
		if err != nil {
			t.Fatal(err)
		}
		if ci.Version != v {
			t.Fatalf("commit %d assigned version %d", v, ci.Version)
		}
	}
	for v := 1; v <= 3; v++ {
		got, err := g.Retrieve(ctx, "logs", v)
		if err != nil {
			t.Fatal(err)
		}
		if got.Version != v || !bytes.Equal(got.Data, payloadFor(32, v)) {
			t.Errorf("version %d mismatch", v)
		}
	}
	latest, err := g.Retrieve(ctx, "logs", 0)
	if err != nil {
		t.Fatal(err)
	}
	if latest.Version != 3 {
		t.Errorf("latest = v%d, want v3", latest.Version)
	}
	all, _, err := g.RetrieveAll(ctx, "logs", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || !bytes.Equal(all[0], payloadFor(32, 1)) {
		t.Errorf("RetrieveAll returned %d versions", len(all))
	}
	entries, err := g.Log(ctx, "logs")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 || entries[0].Version != 1 || !entries[0].Full || entries[2].ChainDepth != 2 {
		t.Errorf("Log = %+v", entries)
	}
	ai, err := g.Info(ctx, "logs")
	if err != nil {
		t.Fatal(err)
	}
	if ai.Versions != 3 || len(ai.Nodes) != 6 {
		t.Errorf("Info = versions %d, %d nodes", ai.Versions, len(ai.Nodes))
	}
	for i, n := range ai.Nodes {
		if !n.Up {
			t.Errorf("node %d reported down", i)
		}
	}
	st := g.Stats()
	if st.Commits != 3 || st.ArchivesOpen != 1 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestGatewayCreateConflicts(t *testing.T) {
	g := newTestGateway(t, Config{})
	if _, err := g.Create(t.Context(), "a", testSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Create(t.Context(), "a", testSpec()); !errors.Is(err, store.ErrConflict) {
		t.Errorf("duplicate create: err = %v, want ErrConflict", err)
	}
	for _, name := range []string{"", "a/b", `a\b`, ".hidden"} {
		if _, err := g.Create(t.Context(), name, testSpec()); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
}

func TestGatewayCommitPrecondition(t *testing.T) {
	g := newTestGateway(t, Config{})
	ctx := t.Context()
	if _, err := g.Create(ctx, "a", testSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Commit(ctx, "a", 0, payloadFor(32, 1)); err != nil {
		t.Fatal(err)
	}
	// Stale expectation: the archive now has 1 version, not 0.
	if _, err := g.Commit(ctx, "a", 0, payloadFor(32, 2)); !errors.Is(err, store.ErrConflict) {
		t.Fatalf("stale expect: err = %v, want ErrConflict", err)
	}
	if got := g.Stats().Conflicts; got != 1 {
		t.Errorf("Conflicts = %d, want 1", got)
	}
	if g.Stats().Commits != 1 {
		t.Errorf("Commits = %d, want 1", g.Stats().Commits)
	}
}

func TestGatewayBusyRejection(t *testing.T) {
	g := newTestGateway(t, Config{MaxQueuedWriters: 1})
	ctx := t.Context()
	if _, err := g.Create(ctx, "a", testSpec()); err != nil {
		t.Fatal(err)
	}
	st, err := g.open(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	// Hold the only writer slot; the next commit must be rejected, typed,
	// without waiting.
	if err := st.acquire(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Commit(ctx, "a", -1, payloadFor(32, 1)); !errors.Is(err, store.ErrBusy) {
		t.Fatalf("full queue: err = %v, want ErrBusy", err)
	}
	if got := g.Stats().BusyRejections; got != 1 {
		t.Errorf("BusyRejections = %d, want 1", got)
	}
	st.release()
	if _, err := g.Commit(ctx, "a", -1, payloadFor(32, 1)); err != nil {
		t.Fatalf("commit after release: %v", err)
	}
}

func TestGatewayAcquireHonorsContext(t *testing.T) {
	g := newTestGateway(t, Config{})
	if _, err := g.Create(t.Context(), "a", testSpec()); err != nil {
		t.Fatal(err)
	}
	st, err := g.open(t.Context(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.acquire(t.Context(), 8); err != nil {
		t.Fatal(err)
	}
	defer st.release()
	ctx, cancel := context.WithCancel(t.Context())
	cancel()
	if err := st.acquire(ctx, 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled wait: err = %v, want context.Canceled", err)
	}
	if got := st.queuedWriters(); got != 1 {
		t.Errorf("queuedWriters = %d after cancelled wait, want 1", got)
	}
}

func TestGatewayPersistenceAcrossRestart(t *testing.T) {
	root := t.TempDir()
	cluster := store.NewMemCluster(6)
	g := newTestGateway(t, Config{Cluster: cluster, Root: root})
	ctx := t.Context()
	if _, err := g.Create(ctx, "a", testSpec()); err != nil {
		t.Fatal(err)
	}
	want := payloadFor(32, 1)
	if _, err := g.Commit(ctx, "a", -1, want); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Commit(ctx, "a", -1, want); !errors.Is(err, ErrClosed) {
		t.Errorf("commit after close: err = %v, want ErrClosed", err)
	}

	// A fresh gateway over the same root and cluster reopens the archive
	// from its persisted manifest.
	g2 := newTestGateway(t, Config{Cluster: cluster, Root: root})
	got, err := g2.Retrieve(ctx, "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, want) {
		t.Error("restarted gateway served different bytes")
	}
	if err := g2.Close(ctx); err != nil {
		t.Fatal(err)
	}

	// Losing the local manifest falls back to the cluster-replicated copy
	// (attach), which is then re-persisted locally.
	path := filepath.Join(root, "a.json")
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	g3 := newTestGateway(t, Config{Cluster: cluster, Root: root})
	got, err = g3.Retrieve(ctx, "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, want) {
		t.Error("cluster-recovered gateway served different bytes")
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("recovered manifest not re-persisted locally: %v", err)
	}
}

func TestGatewayUnknownArchiveAndVersion(t *testing.T) {
	g := newTestGateway(t, Config{})
	ctx := t.Context()
	if _, err := g.Retrieve(ctx, "nope", 1); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("unknown archive: err = %v, want ErrNotFound", err)
	}
	if _, err := g.Create(ctx, "a", testSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Commit(ctx, "a", -1, payloadFor(32, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Retrieve(ctx, "a", 2); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("unknown version: err = %v, want ErrNotFound", err)
	}
	if _, err := g.Retrieve(ctx, "a", -1); !errors.Is(err, store.ErrNotFound) {
		t.Errorf("negative version: err = %v, want ErrNotFound", err)
	}
	// A failed open must not leave a poisoned entry: creating the name
	// afterwards succeeds.
	if _, err := g.Create(ctx, "nope", testSpec()); err != nil {
		t.Errorf("create after failed open: %v", err)
	}
}

func TestGatewayMaintenanceOps(t *testing.T) {
	g := newTestGateway(t, Config{})
	ctx := t.Context()
	spec := testSpec()
	spec.MaxChainLength = 2
	if _, err := g.Create(ctx, "a", spec); err != nil {
		t.Fatal(err)
	}
	for v := 1; v <= 5; v++ {
		if _, err := g.Commit(ctx, "a", -1, payloadFor(32, v)); err != nil {
			t.Fatal(err)
		}
	}
	report, err := g.Compact(ctx, "a", 2)
	if err != nil {
		t.Fatal(err)
	}
	if report.Info.MaxChainLength != 2 {
		t.Errorf("Compact report = %+v", report)
	}
	sr, err := g.Scrub(ctx, "a", false)
	if err != nil {
		t.Fatal(err)
	}
	if sr.ShardsChecked == 0 {
		t.Error("scrub checked no shards")
	}
	if _, err := g.Repair(ctx, "a", 0); err != nil {
		t.Fatal(err)
	}
	// All five versions still decode after maintenance.
	for v := 1; v <= 5; v++ {
		got, err := g.Retrieve(ctx, "a", v)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Data, payloadFor(32, v)) {
			t.Errorf("version %d mismatch after compact+scrub+repair", v)
		}
	}
}

func TestGatewayCompactNeedsBound(t *testing.T) {
	g := newTestGateway(t, Config{})
	if _, err := g.Create(t.Context(), "a", testSpec()); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Compact(t.Context(), "a", 0); !errors.Is(err, store.ErrConflict) {
		t.Errorf("unbounded compact: err = %v, want ErrConflict", err)
	}
}
