package gateway_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/secarchive/sec/internal/gateway"
	"github.com/secarchive/sec/internal/store"
	"github.com/secarchive/sec/internal/testutil"
	"github.com/secarchive/sec/internal/transport"
	"github.com/secarchive/sec/secclient"
)

// servedGateway is one secgw-shaped fixture: a gateway over in-memory
// nodes, served on loopback TCP.
type servedGateway struct {
	gw      *gateway.Gateway
	server  *transport.Server
	cluster *store.Cluster
	addr    string
}

func startServedGateway(t *testing.T) *servedGateway {
	t.Helper()
	// Registered before any fixture cleanup, so it runs last (t.Cleanup is
	// LIFO): the whole fixture must tear down without leaking a goroutine.
	testutil.CheckGoroutineLeaks(t)
	cluster := store.NewMemCluster(6)
	gw, err := gateway.New(gateway.Config{Cluster: cluster, Root: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	server := transport.NewServer(nil, transport.WithArchiveBackend(gw))
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = server.Close()
		_ = gw.Close(context.Background())
	})
	// Registered after the close cleanup, so it polls while the server is
	// still up, once every client (whose cleanups run first) has closed:
	// client disconnects must drain the server's connection set.
	t.Cleanup(func() { testutil.CheckConnDrain(t, "gateway server", server.ConnCount) })
	return &servedGateway{gw: gw, server: server, cluster: cluster, addr: addr.String()}
}

func (s *servedGateway) dial(t *testing.T) *secclient.Client {
	t.Helper()
	client := secclient.Dial(s.addr, secclient.WithTimeout(5*time.Second))
	t.Cleanup(func() { _ = client.Close() })
	return client
}

// payloadFor builds a deterministic capacity-sized object for a version of
// a named archive, so every client can verify bytes independently.
func servedPayload(name string, capacity, version int) []byte {
	seed := byte(len(name)) + name[0]
	p := make([]byte, capacity)
	for i := range p {
		p[i] = byte(i*31+version*7) + seed
	}
	return p
}

// TestServedCacheCoherenceAcrossClients is the shared-read-cache contract:
// two clients of one gateway share one decoded-version cache, a second
// client's warm read is served from gateway memory with zero node reads,
// and a commit by one writer invalidates what every other client sees —
// the second client never reads stale bytes.
func TestServedCacheCoherenceAcrossClients(t *testing.T) {
	fixture := startServedGateway(t)
	writer := fixture.dial(t)
	reader := fixture.dial(t)
	ctx := t.Context()

	spec := secclient.Spec{N: 6, K: 4, BlockSize: 8, ReadCacheBytes: 1 << 20}
	info, err := writer.Create(ctx, "shared", spec)
	if err != nil {
		t.Fatal(err)
	}
	capacity := info.Capacity

	v1 := servedPayload("shared", capacity, 1)
	if _, err := writer.Commit(ctx, "shared", v1); err != nil {
		t.Fatal(err)
	}

	// The writer's read warms the shared cache...
	if _, err := writer.Latest(ctx, "shared"); err != nil {
		t.Fatal(err)
	}
	// ...so the OTHER client's read of the same version is a cache hit:
	// zero node reads, served from gateway memory.
	fixture.cluster.ResetStats()
	rgot, err := reader.Retrieve(ctx, "shared", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rgot.Data, v1) {
		t.Fatal("reader saw different bytes than the writer committed")
	}
	if rgot.Stats.CacheHits == 0 || rgot.Stats.NodeReads != 0 {
		t.Errorf("warm cross-client read: stats = %+v, want a cache hit with zero node reads", rgot.Stats)
	}
	if reads := fixture.cluster.TotalStats().Reads; reads != 0 {
		t.Errorf("warm cross-client read issued %d node get RPCs, want 0", reads)
	}

	// A second writer commit must invalidate what the reader sees: the
	// reader's next latest-read returns the new version's bytes, never the
	// cached old ones.
	v2 := servedPayload("shared", capacity, 2)
	if _, err := writer.Commit(ctx, "shared", v2); err != nil {
		t.Fatal(err)
	}
	rgot, err = reader.Latest(ctx, "shared")
	if err != nil {
		t.Fatal(err)
	}
	if rgot.Version != 2 || !bytes.Equal(rgot.Data, v2) {
		t.Fatalf("reader served stale data after cross-client commit: v%d", rgot.Version)
	}
	// The old version is still intact and correct.
	rgot, err = reader.Retrieve(ctx, "shared", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rgot.Data, v1) {
		t.Error("version 1 corrupted by invalidation")
	}
}

// TestServedConcurrentClients serves two archives from one gateway to a
// crowd of concurrent TCP clients mixing commits, retrieves, and log
// reads. Every retrieved version must be byte-identical to what its
// version number dictates, optimistic-commit conflicts and busy
// rejections must be the only write failures, and tearing the fixture
// down must leak no goroutines. Run under -race in CI.
func TestServedConcurrentClients(t *testing.T) {
	fixture := startServedGateway(t)
	ctx := t.Context()
	archives := []string{"alpha", "beta"}
	const versionsPerArchive = 6
	const readersPerArchive = 2

	setup := fixture.dial(t)
	capacity := 0
	for _, name := range archives {
		info, err := setup.Create(ctx, name, secclient.Spec{N: 6, K: 4, BlockSize: 8, ReadCacheBytes: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		capacity = info.Capacity
	}

	var wg sync.WaitGroup
	errc := make(chan error, len(archives)*(2+readersPerArchive))

	// Two competing writers per archive race CommitAt on the same expected
	// versions; conflict and busy rejections are re-read-and-retried, so
	// the committed sequence stays exactly payload(1..versionsPerArchive).
	for _, name := range archives {
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				client := secclient.Dial(fixture.addr, secclient.WithTimeout(5*time.Second))
				defer client.Close()
				for {
					info, err := client.Info(ctx, name)
					if err != nil {
						errc <- fmt.Errorf("info %s: %w", name, err)
						return
					}
					v := info.Versions
					if v >= versionsPerArchive {
						return
					}
					_, err = client.CommitAt(ctx, name, v, servedPayload(name, capacity, v+1))
					if err != nil && !errors.Is(err, store.ErrConflict) && !errors.Is(err, store.ErrBusy) {
						errc <- fmt.Errorf("commit %s v%d: %w", name, v+1, err)
						return
					}
				}
			}(name)
		}
	}

	// Readers hammer retrieve and log while the writers commit: whatever
	// version they observe must carry exactly its dictated bytes.
	for _, name := range archives {
		for r := 0; r < readersPerArchive; r++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				client := secclient.Dial(fixture.addr, secclient.WithTimeout(5*time.Second))
				defer client.Close()
				for {
					entries, err := client.Log(ctx, name)
					if err != nil {
						errc <- fmt.Errorf("log %s: %w", name, err)
						return
					}
					if len(entries) == 0 {
						continue
					}
					got, err := client.Latest(ctx, name)
					if err != nil {
						// The latest version can be superseded between the
						// log and the read on a torn snapshot; only real
						// failures count.
						if errors.Is(err, store.ErrNotFound) {
							continue
						}
						errc <- fmt.Errorf("latest %s: %w", name, err)
						return
					}
					if !bytes.Equal(got.Data, servedPayload(name, capacity, got.Version)) {
						errc <- fmt.Errorf("%s v%d served wrong bytes", name, got.Version)
						return
					}
					if got.Version >= versionsPerArchive {
						return
					}
				}
			}(name)
		}
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	// Every version of every archive is byte-identical for a fresh client.
	final := fixture.dial(t)
	for _, name := range archives {
		versions, _, err := final.RetrieveAll(ctx, name, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(versions) != versionsPerArchive {
			t.Fatalf("%s has %d versions, want %d", name, len(versions), versionsPerArchive)
		}
		for i, data := range versions {
			if !bytes.Equal(data, servedPayload(name, capacity, i+1)) {
				t.Errorf("%s v%d not byte-identical", name, i+1)
			}
		}
	}

	// Teardown is checked by the fixture: the conn-drain and
	// goroutine-leak cleanups registered in startServedGateway run after
	// every client cleanup has closed its connection.
}

// TestServedGracefulShutdownPersists drives the secgw shutdown sequence:
// stop the server, close the gateway, and a fresh gateway over the same
// root serves the same bytes.
func TestServedGracefulShutdownPersists(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	cluster := store.NewMemCluster(6)
	root := t.TempDir()
	gw, err := gateway.New(gateway.Config{Cluster: cluster, Root: root})
	if err != nil {
		t.Fatal(err)
	}
	server := transport.NewServer(nil, transport.WithArchiveBackend(gw))
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client := secclient.Dial(addr.String(), secclient.WithTimeout(5*time.Second))
	ctx := t.Context()
	if _, err := client.Create(ctx, "a", secclient.Spec{N: 6, K: 4, BlockSize: 8}); err != nil {
		t.Fatal(err)
	}
	want := servedPayload("a", 32, 1)
	if _, err := client.Commit(ctx, "a", want); err != nil {
		t.Fatal(err)
	}
	_ = client.Close()
	if err := server.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := gw.Close(ctx); err != nil {
		t.Fatal(err)
	}

	gw2, err := gateway.New(gateway.Config{Cluster: cluster, Root: root})
	if err != nil {
		t.Fatal(err)
	}
	defer gw2.Close(context.Background())
	got, err := secclient.Embed(gw2).Retrieve(ctx, "a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, want) {
		t.Error("restarted gateway served different bytes")
	}
}
