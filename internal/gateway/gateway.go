// Package gateway turns SEC archives from library objects owned by one
// process into a served, multi-user resource: one long-running Gateway
// owns many archives against a single node cluster, opens or creates them
// on demand, serializes writers per archive behind a bounded admission
// queue (typed store.ErrBusy/store.ErrConflict rejections), and shares
// each archive's decoded-version read cache across every client — so a
// version one client committed is served to all others from memory, and
// cache invalidation on commit is coherent across writers by
// construction (there is exactly one core.Archive per name).
//
// The Gateway implements transport.ArchiveBackend, so it can be served
// over TCP (transport.NewServer(nil, transport.WithArchiveBackend(gw)),
// see cmd/secgw) or embedded in-process behind the same interface
// (secclient.Embed). Manifest durability follows the crash-safe ordering
// the CLI established: mutate the chain, persist the manifest under the
// root (and replicate it to the cluster best-effort), and only then
// reclaim superseded codewords.
package gateway

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/secarchive/sec/internal/core"
	"github.com/secarchive/sec/internal/store"
	"github.com/secarchive/sec/internal/transport"
)

// ErrClosed rejects operations on a gateway that has been closed.
var ErrClosed = errors.New("gateway: gateway closed")

// errNoManifestDir marks a gateway with no manifest persistence
// configured; archives then live in memory and on the cluster replicas
// only.
var errNoManifestDir = errors.New("gateway: no manifest root configured")

// DefaultMaxQueuedWriters bounds the per-archive commit admission queue
// (active writer plus waiters) when Config.MaxQueuedWriters is zero.
const DefaultMaxQueuedWriters = 8

// Config configures a Gateway.
type Config struct {
	// Cluster is the storage fleet every archive stripes over. Required.
	Cluster *store.Cluster
	// Root is the directory archive manifests are persisted under, one
	// <name>.json per archive. Empty means no local persistence: archives
	// are reopened from their cluster-replicated manifests instead.
	Root string
	// ManifestPath overrides the manifest location per archive. It exists
	// so an embedded gateway can pin an archive to an exact file (the
	// CLI's -manifest flag); most callers should set Root instead.
	ManifestPath func(name string) string
	// MaxQueuedWriters bounds each archive's commit admission queue: the
	// writer holding the archive plus the writers waiting for it. A
	// commit arriving with the queue full is rejected with a typed
	// store.ErrBusy error instead of waiting unboundedly. Zero means
	// DefaultMaxQueuedWriters.
	MaxQueuedWriters int
}

// Stats is a snapshot of gateway-level counters.
type Stats struct {
	// ArchivesOpen is the number of archives currently resident.
	ArchivesOpen int
	// Commits and Retrieves count successful data-path operations.
	Commits, Retrieves uint64
	// Logs, Infos, Compactions, Scrubs and Repairs count the successful
	// metadata and maintenance operations, so a load profile's op mix is
	// visible end to end.
	Logs, Infos, Compactions, Scrubs, Repairs uint64
	// BusyRejections counts commits refused because an archive's writer
	// queue was full; Conflicts counts failed optimistic preconditions.
	BusyRejections, Conflicts uint64
}

// archiveState is one resident archive: the shared core.Archive every
// client of this name uses (which is what makes the read cache shared and
// coherent), plus the writer-serialization gate.
type archiveState struct {
	name string
	// ready is closed once the load attempt finished; err then reports
	// its outcome. Failed loads are evicted from the map, so a later
	// open retries.
	ready   chan struct{}
	err     error
	archive *core.Archive
	// slot is the single-writer gate; queued counts admitted writers
	// (holder plus waiters), bounded by MaxQueuedWriters.
	slot   chan struct{}
	qmu    sync.Mutex
	queued int
}

func newArchiveState(name string) *archiveState {
	return &archiveState{
		name:  name,
		ready: make(chan struct{}),
		slot:  make(chan struct{}, 1),
	}
}

// acquire admits a writer, waiting for the slot unless the queue is full
// (typed busy rejection) or ctx ends first.
func (st *archiveState) acquire(ctx context.Context, max int) error {
	st.qmu.Lock()
	if st.queued >= max {
		st.qmu.Unlock()
		return fmt.Errorf("gateway: archive %q writer queue full (%d writers): %w", st.name, max, store.ErrBusy)
	}
	st.queued++
	st.qmu.Unlock()
	select {
	case st.slot <- struct{}{}:
		return nil
	case <-ctx.Done():
		st.qmu.Lock()
		st.queued--
		st.qmu.Unlock()
		return fmt.Errorf("gateway: waiting for archive %q writer slot: %w", st.name, context.Cause(ctx))
	}
}

func (st *archiveState) release() {
	<-st.slot
	st.qmu.Lock()
	st.queued--
	st.qmu.Unlock()
}

func (st *archiveState) queuedWriters() int {
	st.qmu.Lock()
	defer st.qmu.Unlock()
	return st.queued
}

// Gateway serves many archives as one multi-user resource. It implements
// transport.ArchiveBackend. Methods are safe for concurrent use.
type Gateway struct {
	cfg Config

	mu       sync.Mutex
	archives map[string]*archiveState
	closed   bool

	commits     atomic.Uint64
	retrieves   atomic.Uint64
	logs        atomic.Uint64
	infos       atomic.Uint64
	compactions atomic.Uint64
	scrubs      atomic.Uint64
	repairs     atomic.Uint64
	busy        atomic.Uint64
	conflicts   atomic.Uint64
}

// New returns a gateway over the given cluster.
func New(cfg Config) (*Gateway, error) {
	if cfg.Cluster == nil {
		return nil, fmt.Errorf("gateway: config needs a cluster")
	}
	if cfg.MaxQueuedWriters <= 0 {
		cfg.MaxQueuedWriters = DefaultMaxQueuedWriters
	}
	if cfg.Root != "" {
		if err := os.MkdirAll(cfg.Root, 0o755); err != nil {
			return nil, fmt.Errorf("gateway: creating manifest root: %w", err)
		}
	}
	return &Gateway{cfg: cfg, archives: make(map[string]*archiveState)}, nil
}

// Cluster returns the storage fleet behind the gateway (for wire-byte
// accounting via store.Cluster.WireStats).
func (g *Gateway) Cluster() *store.Cluster { return g.cfg.Cluster }

// Stats returns a snapshot of the gateway counters.
func (g *Gateway) Stats() Stats {
	g.mu.Lock()
	open := len(g.archives)
	g.mu.Unlock()
	return Stats{
		ArchivesOpen:   open,
		Commits:        g.commits.Load(),
		Retrieves:      g.retrieves.Load(),
		Logs:           g.logs.Load(),
		Infos:          g.infos.Load(),
		Compactions:    g.compactions.Load(),
		Scrubs:         g.scrubs.Load(),
		Repairs:        g.repairs.Load(),
		BusyRejections: g.busy.Load(),
		Conflicts:      g.conflicts.Load(),
	}
}

// validName guards the default Root-relative manifest layout (and the
// shard object namespace) against path-shaped archive names.
func validName(name string) error {
	if name == "" || len(name) > 255 {
		return fmt.Errorf("gateway: invalid archive name %q", name)
	}
	if strings.ContainsAny(name, "/\\") || strings.HasPrefix(name, ".") {
		return fmt.Errorf("gateway: invalid archive name %q (path separators and leading dots are reserved)", name)
	}
	return nil
}

// manifestPath returns where the named archive's manifest persists, or
// an errNoManifestDir-wrapping error when persistence is off.
func (g *Gateway) manifestPath(name string) (string, error) {
	if g.cfg.ManifestPath != nil {
		return g.cfg.ManifestPath(name), nil
	}
	if g.cfg.Root == "" {
		return "", fmt.Errorf("gateway: archive %q: %w", name, errNoManifestDir)
	}
	return filepath.Join(g.cfg.Root, name+".json"), nil
}

// open returns the resident state for name, loading it on first use: from
// the persisted manifest if present, else from the cluster-replicated
// manifest (re-persisting it locally, which is how `attach` recovers a
// lost manifest file). Concurrent opens of the same name share one load.
func (g *Gateway) open(ctx context.Context, name string) (*archiveState, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil, ErrClosed
	}
	st, ok := g.archives[name]
	if !ok {
		st = newArchiveState(name)
		g.archives[name] = st
	}
	g.mu.Unlock()
	if !ok {
		st.archive, st.err = g.load(ctx, name)
		if st.err != nil {
			g.mu.Lock()
			delete(g.archives, name)
			g.mu.Unlock()
		}
		close(st.ready)
	}
	select {
	case <-st.ready:
	case <-ctx.Done():
		return nil, fmt.Errorf("gateway: opening archive %q: %w", name, context.Cause(ctx))
	}
	if st.err != nil {
		return nil, st.err
	}
	return st, nil
}

// load performs the actual open-by-name.
func (g *Gateway) load(ctx context.Context, name string) (*core.Archive, error) {
	path, pathErr := g.manifestPath(name)
	if pathErr == nil {
		f, err := os.Open(path)
		if err == nil {
			defer f.Close()
			archive, err := core.Load(f, g.cfg.Cluster)
			if err != nil {
				return nil, fmt.Errorf("gateway: opening manifest %s: %w", path, err)
			}
			if archive.Name() != name {
				return nil, fmt.Errorf("gateway: manifest %s names archive %q, not %q: %w", path, archive.Name(), name, store.ErrConflict)
			}
			return archive, nil
		}
		if !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("gateway: reading manifest %s: %w", path, err)
		}
	}
	// No local manifest: fall back to the cluster-replicated copy, then
	// persist it so the next open is local.
	archive, err := core.LoadFromClusterContext(ctx, name, g.cfg.Cluster)
	if err != nil {
		return nil, fmt.Errorf("gateway: unknown archive %q: %w (cluster manifest: %w)", name, store.ErrNotFound, err)
	}
	if pathErr == nil {
		if err := saveManifest(archive, path); err != nil {
			return nil, err
		}
	}
	return archive, nil
}

// saveManifest atomically persists an archive's manifest to path.
func saveManifest(archive *core.Archive, path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".manifest-*")
	if err != nil {
		return fmt.Errorf("gateway: persisting manifest: %w", err)
	}
	defer os.Remove(tmp.Name())
	if err := archive.Save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("gateway: persisting manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("gateway: persisting manifest: %w", err)
	}
	return nil
}

// persist writes the archive's manifest to its configured location; a
// gateway without persistence relies on the cluster replicas instead.
func (g *Gateway) persist(st *archiveState) error {
	path, err := g.manifestPath(st.name)
	if err != nil {
		return nil // in-memory gateway: cluster replication is the record
	}
	return saveManifest(st.archive, path)
}

// Create builds a fresh archive under the gateway and persists its
// manifest. An archive that already exists (resident, on disk, or being
// created concurrently) is a typed store.ErrConflict rejection.
func (g *Gateway) Create(ctx context.Context, name string, spec transport.ArchiveSpec) (transport.ArchiveInfo, error) {
	if err := validName(name); err != nil {
		return transport.ArchiveInfo{}, err
	}
	st, err := func() (*archiveState, error) {
		g.mu.Lock()
		defer g.mu.Unlock()
		if g.closed {
			return nil, ErrClosed
		}
		if _, ok := g.archives[name]; ok {
			return nil, fmt.Errorf("gateway: archive %q already exists: %w", name, store.ErrConflict)
		}
		path, pathErr := g.manifestPath(name)
		if pathErr == nil {
			if _, err := os.Stat(path); err == nil {
				return nil, fmt.Errorf("gateway: manifest %s already exists: %w", path, store.ErrConflict)
			}
		}
		archive, err := core.Open(spec.Manifest(name), g.cfg.Cluster)
		if err != nil {
			return nil, err
		}
		if pathErr == nil {
			if err := saveManifest(archive, path); err != nil {
				return nil, err
			}
		}
		st := newArchiveState(name)
		st.archive = archive
		close(st.ready)
		g.archives[name] = st
		return st, nil
	}()
	if err != nil {
		return transport.ArchiveInfo{}, err
	}
	return g.info(ctx, st, false), nil
}

// Commit appends object as the archive's next version, serialized against
// every other writer of the same archive. expect >= 0 demands the archive
// currently hold exactly expect versions (optimistic concurrency); a
// stale expectation is a typed store.ErrConflict rejection. The manifest
// is persisted before superseded codewords are reclaimed, in the same
// crash-safe order the CLI uses.
func (g *Gateway) Commit(ctx context.Context, name string, expect int, object []byte) (core.CommitInfo, error) {
	st, err := g.open(ctx, name)
	if err != nil {
		return core.CommitInfo{}, err
	}
	if err := st.acquire(ctx, g.cfg.MaxQueuedWriters); err != nil {
		if errors.Is(err, store.ErrBusy) {
			g.busy.Add(1)
		}
		return core.CommitInfo{}, err
	}
	defer st.release()
	if expect >= 0 {
		if v := st.archive.Versions(); v != expect {
			g.conflicts.Add(1)
			return core.CommitInfo{}, fmt.Errorf("gateway: archive %q has %d versions, commit expected %d: %w", name, v, expect, store.ErrConflict)
		}
	}
	info, err := st.archive.CommitContext(ctx, object)
	if info.Version == 0 {
		return info, err // nothing was stored; the manifest is unchanged
	}
	// The commit is durable even when err is non-nil (a failed
	// auto-compaction reports the committed version alongside the error),
	// and for Reversed SEC the previous tip's full codeword is already
	// gone from the nodes — so the manifest MUST be persisted now either
	// way, or a reopen would anchor on deleted objects.
	if serr := g.persist(st); serr != nil {
		err = errors.Join(err, serr)
	} else {
		// Replicate the manifest onto the nodes too (best effort), then —
		// only after the manifest is safe — reclaim compaction-superseded
		// codewords.
		_ = st.archive.SaveToClusterContext(ctx)
		if info.Compaction != nil {
			deleted, _, rerr := st.archive.ReclaimSupersededContext(ctx)
			if rerr == nil {
				info.Compaction.ShardsDeleted += deleted
			}
		}
	}
	if err != nil {
		return info, err
	}
	g.commits.Add(1)
	return info, nil
}

// resolveVersion maps the wire's "0 = latest" onto a concrete version.
func resolveVersion(st *archiveState, version int) (int, error) {
	latest := st.archive.Versions()
	if version == 0 {
		version = latest
	}
	if version < 1 || version > latest {
		return 0, fmt.Errorf("gateway: archive %q has %d versions, not version %d: %w", st.name, latest, version, store.ErrNotFound)
	}
	return version, nil
}

// Retrieve decodes one version (0 = the latest at request time). All
// clients share the archive's decoded-version read cache.
func (g *Gateway) Retrieve(ctx context.Context, name string, version int) (transport.ArchiveVersion, error) {
	st, err := g.open(ctx, name)
	if err != nil {
		return transport.ArchiveVersion{}, err
	}
	v, err := resolveVersion(st, version)
	if err != nil {
		return transport.ArchiveVersion{}, err
	}
	data, stats, err := st.archive.RetrieveContext(ctx, v)
	if err != nil {
		return transport.ArchiveVersion{}, err
	}
	g.retrieves.Add(1)
	return transport.ArchiveVersion{Version: v, Data: data, Stats: stats}, nil
}

// RetrieveAll decodes versions 1..version (0 = through the latest).
func (g *Gateway) RetrieveAll(ctx context.Context, name string, version int) ([][]byte, core.RetrievalStats, error) {
	st, err := g.open(ctx, name)
	if err != nil {
		return nil, core.RetrievalStats{}, err
	}
	v, err := resolveVersion(st, version)
	if err != nil {
		return nil, core.RetrievalStats{}, err
	}
	versions, stats, err := st.archive.RetrieveAllContext(ctx, v)
	if err != nil {
		return nil, core.RetrievalStats{}, err
	}
	g.retrieves.Add(1)
	return versions, stats, nil
}

// Log returns the archive's version history with per-version chain costs.
func (g *Gateway) Log(ctx context.Context, name string) ([]transport.ArchiveLogEntry, error) {
	st, err := g.open(ctx, name)
	if err != nil {
		return nil, err
	}
	m := st.archive.Manifest()
	depths, planned, err := st.archive.ChainStats()
	if err != nil {
		return nil, err
	}
	entries := make([]transport.ArchiveLogEntry, len(m.Entries))
	for i, e := range m.Entries {
		entries[i] = transport.ArchiveLogEntry{
			Version:      e.Version,
			Full:         e.Full,
			Delta:        e.Delta,
			Gamma:        e.Gamma,
			Length:       e.Length,
			Base:         e.Base,
			Checkpoint:   e.Checkpoint,
			Compressed:   e.Compressed,
			Support:      e.Support,
			ChainDepth:   depths[i],
			PlannedReads: planned[i],
		}
	}
	g.logs.Add(1)
	return entries, nil
}

// info snapshots one archive. probe says whether to spend a liveness
// probe per cluster node.
func (g *Gateway) info(ctx context.Context, st *archiveState, probe bool) transport.ArchiveInfo {
	info := transport.ArchiveInfo{
		Manifest:      st.archive.Manifest(),
		Versions:      st.archive.Versions(),
		Capacity:      st.archive.Capacity(),
		QueuedWriters: st.queuedWriters(),
	}
	if cache, ok := st.archive.ReadCacheStats(); ok {
		info.Cache = &cache
	}
	health := g.cfg.Cluster.Health()
	info.Nodes = make([]transport.ArchiveNodeStatus, len(health))
	for i, h := range health {
		up := !probe
		if probe {
			up = g.cfg.Cluster.Available(ctx, h.Node)
		}
		info.Nodes[i] = transport.ArchiveNodeStatus{Health: h, Up: up}
	}
	return info
}

// Info describes the archive and probes the cluster's nodes.
func (g *Gateway) Info(ctx context.Context, name string) (transport.ArchiveInfo, error) {
	st, err := g.open(ctx, name)
	if err != nil {
		return transport.ArchiveInfo{}, err
	}
	g.infos.Add(1)
	return g.info(ctx, st, true), nil
}

// Compact bounds the archive's chain depth to maxChain (0 = the archive's
// configured MaxChainLength), holding the writer slot for the duration.
// Crash-safe ordering: rewrite and swap while keeping the superseded
// codewords, persist the new manifest, and only then reclaim.
func (g *Gateway) Compact(ctx context.Context, name string, maxChain int) (transport.CompactReport, error) {
	st, err := g.open(ctx, name)
	if err != nil {
		return transport.CompactReport{}, err
	}
	if maxChain <= 0 {
		maxChain = st.archive.Config().MaxChainLength
	}
	if maxChain <= 0 {
		return transport.CompactReport{}, fmt.Errorf("gateway: archive %q has no MaxChainLength configured and no bound was given: %w", name, store.ErrConflict)
	}
	if err := st.acquire(ctx, g.cfg.MaxQueuedWriters); err != nil {
		if errors.Is(err, store.ErrBusy) {
			g.busy.Add(1)
		}
		return transport.CompactReport{}, err
	}
	defer st.release()
	info, err := st.archive.CompactKeepSupersededContext(ctx, maxChain)
	if err != nil {
		return transport.CompactReport{}, err
	}
	report := transport.CompactReport{Info: info}
	g.compactions.Add(1)
	if !info.Changed() {
		return report, nil
	}
	if err := g.persist(st); err != nil {
		return report, err
	}
	_ = st.archive.SaveToClusterContext(ctx)
	report.Deleted, report.Orphans, err = st.archive.ReclaimSupersededContext(ctx)
	if err != nil {
		return report, err
	}
	return report, nil
}

// Scrub verifies every stored shard; repair additionally rewrites damage,
// holding the writer slot so repairs never race a commit.
func (g *Gateway) Scrub(ctx context.Context, name string, repair bool) (core.ScrubReport, error) {
	st, err := g.open(ctx, name)
	if err != nil {
		return core.ScrubReport{}, err
	}
	if repair {
		if err := st.acquire(ctx, g.cfg.MaxQueuedWriters); err != nil {
			if errors.Is(err, store.ErrBusy) {
				g.busy.Add(1)
			}
			return core.ScrubReport{}, err
		}
		defer st.release()
	}
	report, err := st.archive.ScrubContext(ctx, repair)
	if err == nil {
		g.scrubs.Add(1)
	}
	return report, err
}

// Repair reconstructs the archive's shards on one cluster node, holding
// the writer slot so rebuilt shards never race a commit.
func (g *Gateway) Repair(ctx context.Context, name string, node int) (core.RepairReport, error) {
	st, err := g.open(ctx, name)
	if err != nil {
		return core.RepairReport{}, err
	}
	if err := st.acquire(ctx, g.cfg.MaxQueuedWriters); err != nil {
		if errors.Is(err, store.ErrBusy) {
			g.busy.Add(1)
		}
		return core.RepairReport{}, err
	}
	defer st.release()
	report, err := st.archive.RepairNodeContext(ctx, node)
	if err == nil {
		g.repairs.Add(1)
	}
	return report, err
}

// Close drains the gateway: no new operations are admitted, and every
// resident archive's manifest is persisted (best effort across archives;
// the first error is returned after all are attempted). The caller is
// responsible for draining in-flight requests first (transport's
// Server.Shutdown does that for served gateways). ctx bounds the
// cluster-replication writes.
func (g *Gateway) Close(ctx context.Context) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	states := make([]*archiveState, 0, len(g.archives))
	for _, st := range g.archives {
		states = append(states, st)
	}
	g.mu.Unlock()
	var firstErr error
	for _, st := range states {
		// An already-resident archive is persisted even when ctx is dead
		// (the local write needs no context); only waiting on an in-flight
		// load respects the deadline.
		select {
		case <-st.ready:
		default:
			select {
			case <-st.ready:
			case <-ctx.Done():
				return errors.Join(firstErr, context.Cause(ctx))
			}
		}
		if st.err != nil {
			continue
		}
		if err := g.persist(st); err != nil && firstErr == nil {
			firstErr = err
		}
		_ = st.archive.SaveToClusterContext(ctx)
	}
	return firstErr
}

// The gateway is the canonical ArchiveBackend implementation.
var _ transport.ArchiveBackend = (*Gateway)(nil)
