package gf

// AVX2 multiply kernels: the 16-entry nibble product tables fit one XMM
// register each, so a 32-byte vector is multiplied by a constant with two
// VPSHUFB byte shuffles (low and high source nibble) and a XOR. Assembly is
// in kernels_amd64.s; the hooks below run it on the 32-byte-aligned prefix
// and report how much they handled, leaving the tail to the scalar loop.

// hasAVX2 gates the assembly kernels on both CPU and OS support (the OS
// must save YMM state across context switches, reported via XGETBV).
var hasAVX2 = detectAVX2()

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const osxsaveBit = 1 << 27
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&osxsaveBit == 0 {
		return false
	}
	const xmmAndYMMState = 0x6
	if eax, _ := xgetbv(); eax&xmmAndYMMState != xmmAndYMMState {
		return false
	}
	const avx2Bit = 1 << 5
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&avx2Bit != 0
}

func mulSliceAccel(c byte, dst, src []byte) int {
	n := len(src) &^ 31
	if n == 0 || !hasAVX2 {
		return 0
	}
	mulSliceAVX2(&_tables.mulLow[c], &_tables.mulHigh[c], dst[:n], src[:n])
	return n
}

func mulAddSliceAccel(c byte, dst, src []byte) int {
	n := len(src) &^ 31
	if n == 0 || !hasAVX2 {
		return 0
	}
	mulAddSliceAVX2(&_tables.mulLow[c], &_tables.mulHigh[c], dst[:n], src[:n])
	return n
}

// Implemented in kernels_amd64.s.

func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

func xgetbv() (eax, edx uint32)

//go:noescape
func mulSliceAVX2(low, high *[16]byte, dst, src []byte)

//go:noescape
func mulAddSliceAVX2(low, high *[16]byte, dst, src []byte)
