package gf

import "encoding/binary"

// This file holds the high-throughput GF(2^8) slice kernels. The public
// entry points in gf.go (AddSlice, MulSlice, MulAddSlice) dispatch either
// here or to the scalar reference implementations, controlled by
// SetFastKernels. See DESIGN.md section 2 for the kernel design.
//
// Two techniques are used:
//
//   - Word-wide XOR: AddSlice processes 8 bytes per iteration through
//     encoding/binary uint64 loads/stores, which the compiler lowers to
//     single machine-word operations.
//
//   - Split nibble product tables: instead of one 256-entry row of the full
//     64 KiB product table per coefficient, the multiply kernels use two
//     16-entry tables (low and high source nibble; the klauspost/reedsolomon
//     technique): c*b = mulLow[c][b&15] ^ mulHigh[c][b>>4]. Sixteen-entry
//     tables fit a SIMD register, so on amd64 with AVX2 the multiply runs as
//     two byte shuffles per 32-byte vector (kernels_amd64.s). Architectures
//     without an accelerated path fall back to the scalar row loop, which
//     measures faster than composing nibble lookups byte-wise in pure Go.

// fastKernels selects the vectorized kernels when true (the default). It is
// a plain bool on purpose: toggling is only meant for differential tests and
// benchmarks, which do so while no coding operations are in flight.
var fastKernels = true

// SetFastKernels selects between the fast kernels (true, the default) and
// the scalar reference kernels (false), returning the previous setting. It
// must not be called concurrently with coding operations; it exists so tests
// and benchmarks can compare the two implementations on identical workloads.
func SetFastKernels(enabled bool) (previous bool) {
	previous = fastKernels
	fastKernels = enabled
	return previous
}

// FastKernels reports whether the fast kernels are selected.
func FastKernels() bool { return fastKernels }

// addSliceFast XORs src into dst: the bulk through the accelerated
// multiply-add hook when one exists (XOR is multiply-add by 1), the rest 8
// bytes at a time.
func addSliceFast(dst, src []byte) {
	done := mulAddSliceAccel(1, dst, src)
	if done == len(src) {
		return
	}
	dst, src = dst[done:], src[done:]
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}

// mulSliceFast sets dst[i] = c*src[i]. The bulk is handled by the
// accelerated architecture hook when one exists; the remainder falls back to
// the scalar row loop. c is non-zero and non-one (the callers handle those
// cases with clear/copy).
func mulSliceFast(c byte, dst, src []byte) {
	done := mulSliceAccel(c, dst, src)
	if done < len(src) {
		mulSliceScalar(c, dst[done:], src[done:])
	}
}

// mulAddSliceFast sets dst[i] ^= c*src[i], like mulSliceFast.
func mulAddSliceFast(c byte, dst, src []byte) {
	done := mulAddSliceAccel(c, dst, src)
	if done < len(src) {
		mulAddSliceScalar(c, dst[done:], src[done:])
	}
}

// AddSliceRef is the scalar reference implementation of AddSlice, kept for
// differential testing of the fast kernels.
func AddSliceRef(dst, src []byte) {
	assertSameLen(len(dst), len(src))
	addSliceScalar(dst, src)
}

// MulSliceRef is the scalar reference implementation of MulSlice.
func MulSliceRef(c byte, dst, src []byte) {
	assertSameLen(len(dst), len(src))
	if c == 0 {
		clear(dst)
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	mulSliceScalar(c, dst, src)
}

// MulAddSliceRef is the scalar reference implementation of MulAddSlice.
func MulAddSliceRef(c byte, dst, src []byte) {
	assertSameLen(len(dst), len(src))
	if c == 0 {
		return
	}
	if c == 1 {
		addSliceScalar(dst, src)
		return
	}
	mulAddSliceScalar(c, dst, src)
}

func addSliceScalar(dst, src []byte) {
	for i, s := range src {
		dst[i] ^= s
	}
}

func mulSliceScalar(c byte, dst, src []byte) {
	row := &_tables.mul[c]
	for i, s := range src {
		dst[i] = row[s]
	}
}

func mulAddSliceScalar(c byte, dst, src []byte) {
	row := &_tables.mul[c]
	for i, s := range src {
		dst[i] ^= row[s]
	}
}
