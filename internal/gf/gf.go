// Package gf implements arithmetic over the binary extension fields
// GF(2^8) and GF(2^16).
//
// The erasure codes in this module operate symbol-wise over GF(2^8): a
// storage object is striped into k blocks and every byte position is an
// independent codeword symbol. GF(2^8) supports Cauchy constructions with
// n+k <= 256, which covers all configurations studied in the SEC paper;
// GF(2^16) is provided for larger code dimensions.
//
// Addition in characteristic-2 fields is XOR, so Add and Sub coincide.
// Multiplication uses a full 64 KiB product table; division and inversion
// use exponential/logarithm tables with generator alpha = 0x02.
package gf

import "fmt"

// Order is the number of elements in GF(2^8).
const Order = 256

// polynomial is the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11D) that
// defines GF(2^8); it is the same polynomial used by most Reed-Solomon
// implementations, so coded shards are bit-compatible with them.
const polynomial = 0x11D

// tables bundles the precomputed lookup tables for GF(2^8).
type tables struct {
	// exp[i] = alpha^i for 0 <= i < 510, doubled so Mul can index
	// log[a]+log[b] without a modular reduction.
	exp [510]byte
	// log[a] = log_alpha(a) for a != 0. log[0] is never consulted.
	log [256]int
	// mul[a][b] = a*b for all field elements.
	mul [256][256]byte
	// mulLow[c][x] = c*x and mulHigh[c][x] = c*(x<<4) for nibbles x: the
	// split product tables behind the fast slice kernels (kernels.go),
	// with c*b = mulLow[c][b&15] ^ mulHigh[c][b>>4].
	mulLow  [256][16]byte
	mulHigh [256][16]byte
	// inv[a] = a^-1 for a != 0. inv[0] is 0 and must not be used.
	inv [256]byte
}

var _tables = buildTables()

func buildTables() *tables {
	t := &tables{}
	x := 1
	for i := 0; i < 255; i++ {
		t.exp[i] = byte(x)
		t.exp[i+255] = byte(x)
		t.log[x] = i
		x <<= 1
		if x&0x100 != 0 {
			x ^= polynomial
		}
	}
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			t.mul[a][b] = t.exp[t.log[a]+t.log[b]]
		}
	}
	for a := 1; a < 256; a++ {
		t.inv[a] = t.exp[255-t.log[a]]
	}
	for c := 0; c < 256; c++ {
		for x := 0; x < 16; x++ {
			t.mulLow[c][x] = t.mul[c][x]
			t.mulHigh[c][x] = t.mul[c][x<<4]
		}
	}
	return t
}

// Add returns a+b in GF(2^8). In characteristic 2 this is XOR and is its own
// inverse, so Add also serves as subtraction.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a-b in GF(2^8). Identical to Add in characteristic 2; provided
// so call sites can mirror the paper's formulas (z = x_{j+1} - x_j).
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte { return _tables.mul[a][b] }

// Div returns a/b in GF(2^8). It panics if b is zero: division by zero is a
// programming error in every caller (matrix elimination pivots on non-zero
// entries only).
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return _tables.exp[_tables.log[a]-_tables.log[b]+255]
}

// Inv returns the multiplicative inverse of a in GF(2^8). It panics if a is
// zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return _tables.inv[a]
}

// Exp returns alpha^i where alpha = 0x02 is the generator. The exponent may
// be any integer; it is reduced modulo 255.
func Exp(i int) byte {
	i %= 255
	if i < 0 {
		i += 255
	}
	return _tables.exp[i]
}

// Log returns log_alpha(a) in [0,255). It panics if a is zero, which has no
// logarithm.
func Log(a byte) int {
	if a == 0 {
		panic("gf: log of zero")
	}
	return _tables.log[a]
}

// Pow returns a^e in GF(2^8) for e >= 0, with the convention a^0 = 1 (also
// for a = 0, matching Vandermonde-matrix usage).
func Pow(a byte, e int) byte {
	if e < 0 {
		panic(fmt.Sprintf("gf: negative exponent %d", e))
	}
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return _tables.exp[(_tables.log[a]*e)%255]
}

// AddSlice sets dst[i] ^= src[i] for every position. The slices must have
// equal length; dst and src may be the same slice (but must not otherwise
// overlap).
func AddSlice(dst, src []byte) {
	assertSameLen(len(dst), len(src))
	if fastKernels {
		addSliceFast(dst, src)
		return
	}
	addSliceScalar(dst, src)
}

// MulSlice sets dst[i] = c * src[i] for every position. The slices must have
// equal length; dst and src may be the same slice (but must not otherwise
// overlap).
func MulSlice(c byte, dst, src []byte) {
	assertSameLen(len(dst), len(src))
	if c == 0 {
		clear(dst)
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	if fastKernels {
		mulSliceFast(c, dst, src)
		return
	}
	mulSliceScalar(c, dst, src)
}

// MulAddSlice sets dst[i] ^= c * src[i] for every position: the fused
// multiply-accumulate at the heart of matrix-vector encoding. The slices
// must have equal length; dst and src may be the same slice (but must not
// otherwise overlap).
func MulAddSlice(c byte, dst, src []byte) {
	assertSameLen(len(dst), len(src))
	if c == 0 {
		return
	}
	if c == 1 {
		AddSlice(dst, src)
		return
	}
	if fastKernels {
		mulAddSliceFast(c, dst, src)
		return
	}
	mulAddSliceScalar(c, dst, src)
}

// DotSlice returns the inner product sum_i a[i]*b[i] over GF(2^8). The
// slices must have equal length.
func DotSlice(a, b []byte) byte {
	assertSameLen(len(a), len(b))
	var acc byte
	for i, ai := range a {
		acc ^= _tables.mul[ai][b[i]]
	}
	return acc
}

func assertSameLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("gf: slice length mismatch: %d != %d", a, b))
	}
}
