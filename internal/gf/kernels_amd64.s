// AVX2 GF(2^8) constant-by-slice multiply kernels using split nibble
// product tables (see kernels.go). Both kernels require len(src) == len(dst)
// to be a non-zero multiple of 32, which the Go hooks in kernels_amd64.go
// guarantee.

#include "textflag.h"

DATA nibbleMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibbleMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibbleMask<>(SB), RODATA|NOPTR, $16

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func mulSliceAVX2(low, high *[16]byte, dst, src []byte)
// dst[i] = low[src[i]&15] ^ high[src[i]>>4]
TEXT ·mulSliceAVX2(SB), NOSPLIT, $0-64
	MOVQ          low+0(FP), SI
	MOVQ          high+8(FP), DX
	MOVQ          dst_base+16(FP), DI
	MOVQ          src_base+40(FP), BX
	MOVQ          src_len+48(FP), CX
	VBROADCASTI128 (SI), Y0              // low nibble table in both lanes
	VBROADCASTI128 (DX), Y1              // high nibble table in both lanes
	VBROADCASTI128 nibbleMask<>(SB), Y2  // 0x0f per byte
	SHRQ          $5, CX                 // 32-byte blocks

mulLoop:
	VMOVDQU (BX), Y3
	VPSRLQ  $4, Y3, Y4
	VPAND   Y2, Y3, Y3  // low nibbles
	VPAND   Y2, Y4, Y4  // high nibbles
	VPSHUFB Y3, Y0, Y3  // low[src&15]
	VPSHUFB Y4, Y1, Y4  // high[src>>4]
	VPXOR   Y4, Y3, Y3
	VMOVDQU Y3, (DI)
	ADDQ    $32, BX
	ADDQ    $32, DI
	DECQ    CX
	JNZ     mulLoop

	VZEROUPPER
	RET

// func mulAddSliceAVX2(low, high *[16]byte, dst, src []byte)
// dst[i] ^= low[src[i]&15] ^ high[src[i]>>4]
TEXT ·mulAddSliceAVX2(SB), NOSPLIT, $0-64
	MOVQ          low+0(FP), SI
	MOVQ          high+8(FP), DX
	MOVQ          dst_base+16(FP), DI
	MOVQ          src_base+40(FP), BX
	MOVQ          src_len+48(FP), CX
	VBROADCASTI128 (SI), Y0
	VBROADCASTI128 (DX), Y1
	VBROADCASTI128 nibbleMask<>(SB), Y2
	SHRQ          $5, CX

mulAddLoop:
	VMOVDQU (BX), Y3
	VPSRLQ  $4, Y3, Y4
	VPAND   Y2, Y3, Y3
	VPAND   Y2, Y4, Y4
	VPSHUFB Y3, Y0, Y3
	VPSHUFB Y4, Y1, Y4
	VPXOR   Y4, Y3, Y3
	VPXOR   (DI), Y3, Y3
	VMOVDQU Y3, (DI)
	ADDQ    $32, BX
	ADDQ    $32, DI
	DECQ    CX
	JNZ     mulAddLoop

	VZEROUPPER
	RET
