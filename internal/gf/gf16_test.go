package gf

import (
	"testing"
	"testing/quick"
)

func TestMul16Axioms(t *testing.T) {
	f := func(a, b, c uint16) bool {
		comm := Mul16(a, b) == Mul16(b, a)
		assoc := Mul16(Mul16(a, b), c) == Mul16(a, Mul16(b, c))
		dist := Mul16(a, Add16(b, c)) == Add16(Mul16(a, b), Mul16(a, c))
		ident := Mul16(a, 1) == a && Mul16(a, 0) == 0
		return comm && assoc && dist && ident
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestInv16Exhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive GF(2^16) inverse check skipped in -short mode")
	}
	for a := 1; a < Order16; a++ {
		if got := Mul16(uint16(a), Inv16(uint16(a))); got != 1 {
			t.Fatalf("a*Inv16(a) = %d for a=%d, want 1", got, a)
		}
	}
}

func TestDiv16(t *testing.T) {
	f := func(a, b uint16) bool {
		if b == 0 {
			return true
		}
		return Mul16(Div16(a, b), b) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDiv16ByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div16(1,0) did not panic")
		}
	}()
	Div16(1, 0)
}

func TestInv16ZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv16(0) did not panic")
		}
	}()
	Inv16(0)
}

func TestPow16(t *testing.T) {
	tests := []struct {
		name string
		a    uint16
		e    int
		want uint16
	}{
		{"a^0 = 1", 777, 0, 1},
		{"0^0 = 1", 0, 0, 1},
		{"0^5 = 0", 0, 5, 0},
		{"a^1 = a", 40000, 1, 40000},
		{"generator full order", 2, Order16 - 1, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Pow16(tt.a, tt.e); got != tt.want {
				t.Errorf("Pow16(%d,%d) = %d, want %d", tt.a, tt.e, got, tt.want)
			}
		})
	}
}

func TestGeneratorOrder16(t *testing.T) {
	// alpha must not have a smaller order dividing 2^16-1 = 3*5*17*257.
	for _, d := range []int{3, 5, 17, 257, (Order16 - 1) / 3, (Order16 - 1) / 5, (Order16 - 1) / 17, (Order16 - 1) / 257} {
		if Pow16(2, d) == 1 {
			t.Fatalf("generator order divides %d; polynomial not primitive", d)
		}
	}
}

func TestMulSlice16MatchesScalar(t *testing.T) {
	f := func(c uint16, src []uint16) bool {
		dst := make([]uint16, len(src))
		MulSlice16(c, dst, src)
		for i := range src {
			if dst[i] != Mul16(c, src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAddSlice16MatchesScalar(t *testing.T) {
	f := func(c uint16, src []uint16) bool {
		dst := make([]uint16, len(src))
		for i := range dst {
			dst[i] = uint16(i * 4099)
		}
		want := make([]uint16, len(src))
		copy(want, dst)
		for i := range src {
			want[i] ^= Mul16(c, src[i])
		}
		MulAddSlice16(c, dst, src)
		for i := range want {
			if dst[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
