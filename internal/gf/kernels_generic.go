//go:build !amd64

package gf

// Architectures without an accelerated multiply path report zero bytes
// handled; the callers in kernels.go then run the scalar row loop, which
// measures faster than composing the nibble lookups byte-wise in pure Go.

func mulSliceAccel(c byte, dst, src []byte) int { return 0 }

func mulAddSliceAccel(c byte, dst, src []byte) int { return 0 }
