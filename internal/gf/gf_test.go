package gf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestAddIsXORAndSelfInverse(t *testing.T) {
	f := func(a, b byte) bool {
		return Add(a, b) == a^b && Add(Add(a, b), b) == a && Sub(a, b) == Add(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulCommutativeExhaustive(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := a; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), Mul(byte(b), byte(a)); got != want {
				t.Fatalf("Mul(%d,%d)=%d but Mul(%d,%d)=%d", a, b, got, b, a, want)
			}
		}
	}
}

func TestMulIdentityAndZeroExhaustive(t *testing.T) {
	for a := 0; a < 256; a++ {
		if got := Mul(byte(a), 1); got != byte(a) {
			t.Errorf("Mul(%d,1) = %d, want %d", a, got, a)
		}
		if got := Mul(byte(a), 0); got != 0 {
			t.Errorf("Mul(%d,0) = %d, want 0", a, got)
		}
	}
}

func TestMulAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDistributivity(t *testing.T) {
	f := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestInvExhaustive(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if got := Mul(byte(a), inv); got != 1 {
			t.Fatalf("a*Inv(a) = %d for a=%d, want 1", got, a)
		}
	}
}

func TestDivExhaustive(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 1; b < 256; b++ {
			q := Div(byte(a), byte(b))
			if got := Mul(q, byte(b)); got != byte(a) {
				t.Fatalf("Div(%d,%d)*%d = %d, want %d", a, b, b, got, a)
			}
		}
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div(1,0) did not panic")
		}
	}()
	Div(1, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) did not panic")
		}
	}()
	Log(0)
}

func TestExpLogRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if got := Exp(Log(byte(a))); got != byte(a) {
			t.Fatalf("Exp(Log(%d)) = %d", a, got)
		}
	}
	// The generator has full multiplicative order 255.
	seen := make(map[byte]bool, 255)
	for i := 0; i < 255; i++ {
		seen[Exp(i)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("generator produced %d distinct powers, want 255", len(seen))
	}
}

func TestExpNegativeAndLarge(t *testing.T) {
	tests := []struct {
		name string
		i    int
		want byte
	}{
		{"zero", 0, 1},
		{"full period", 255, 1},
		{"double period", 510, 1},
		{"negative one equals 254", -1, Exp(254)},
		{"negative period", -255, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Exp(tt.i); got != tt.want {
				t.Errorf("Exp(%d) = %d, want %d", tt.i, got, tt.want)
			}
		})
	}
}

func TestPow(t *testing.T) {
	tests := []struct {
		name string
		a    byte
		e    int
		want byte
	}{
		{"a^0 = 1", 7, 0, 1},
		{"0^0 = 1 (Vandermonde convention)", 0, 0, 1},
		{"0^3 = 0", 0, 3, 0},
		{"a^1 = a", 113, 1, 113},
		{"generator^255 = 1", 2, 255, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Pow(tt.a, tt.e); got != tt.want {
				t.Errorf("Pow(%d,%d) = %d, want %d", tt.a, tt.e, got, tt.want)
			}
		})
	}
	// Pow agrees with repeated multiplication.
	f := func(a byte, e uint8) bool {
		want := byte(1)
		for i := 0; i < int(e); i++ {
			want = Mul(want, a)
		}
		return Pow(a, int(e)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pow(2,-1) did not panic")
		}
	}()
	Pow(2, -1)
}

func TestAddSlice(t *testing.T) {
	dst := []byte{1, 2, 3, 4}
	src := []byte{5, 6, 7, 0}
	AddSlice(dst, src)
	want := []byte{1 ^ 5, 2 ^ 6, 3 ^ 7, 4}
	if !bytes.Equal(dst, want) {
		t.Errorf("AddSlice = %v, want %v", dst, want)
	}
}

func TestMulSliceMatchesScalar(t *testing.T) {
	f := func(c byte, src []byte) bool {
		dst := make([]byte, len(src))
		MulSlice(c, dst, src)
		for i := range src {
			if dst[i] != Mul(c, src[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulSliceSpecialCoefficients(t *testing.T) {
	src := []byte{9, 8, 7}
	dst := []byte{1, 1, 1}
	MulSlice(0, dst, src)
	if !bytes.Equal(dst, []byte{0, 0, 0}) {
		t.Errorf("MulSlice(0) = %v, want zeros", dst)
	}
	MulSlice(1, dst, src)
	if !bytes.Equal(dst, src) {
		t.Errorf("MulSlice(1) = %v, want %v", dst, src)
	}
}

func TestMulSliceAliasing(t *testing.T) {
	s := []byte{3, 5, 250}
	want := make([]byte, len(s))
	MulSlice(7, want, s)
	MulSlice(7, s, s)
	if !bytes.Equal(s, want) {
		t.Errorf("aliased MulSlice = %v, want %v", s, want)
	}
}

func TestMulAddSliceMatchesScalar(t *testing.T) {
	f := func(c byte, src []byte) bool {
		dst := make([]byte, len(src))
		for i := range dst {
			dst[i] = byte(i * 31)
		}
		want := make([]byte, len(src))
		copy(want, dst)
		for i := range src {
			want[i] ^= Mul(c, src[i])
		}
		MulAddSlice(c, dst, src)
		return bytes.Equal(dst, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDotSlice(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{4, 5, 6}
	want := Add(Add(Mul(1, 4), Mul(2, 5)), Mul(3, 6))
	if got := DotSlice(a, b); got != want {
		t.Errorf("DotSlice = %d, want %d", got, want)
	}
	if got := DotSlice(nil, nil); got != 0 {
		t.Errorf("DotSlice(nil,nil) = %d, want 0", got)
	}
}

func TestSliceLengthMismatchPanics(t *testing.T) {
	tests := []struct {
		name string
		fn   func()
	}{
		{"AddSlice", func() { AddSlice(make([]byte, 2), make([]byte, 3)) }},
		{"MulSlice", func() { MulSlice(3, make([]byte, 2), make([]byte, 3)) }},
		{"MulAddSlice", func() { MulAddSlice(3, make([]byte, 2), make([]byte, 3)) }},
		{"DotSlice", func() { DotSlice(make([]byte, 2), make([]byte, 3)) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s with mismatched lengths did not panic", tt.name)
				}
			}()
			tt.fn()
		})
	}
}
