package gf

// GF(2^16) backend. The SEC constructions only need q >= n+k, so GF(2^8)
// suffices for every configuration in the paper; GF(2^16) exists for
// deployments with very wide codes (n+k > 256) and for the symbol-width
// ablation bench. Symbols are uint16 values.

// Order16 is the number of elements in GF(2^16).
const Order16 = 1 << 16

// polynomial16 is the primitive polynomial x^16+x^12+x^3+x+1 (0x1100B).
const polynomial16 = 0x1100B

type tables16 struct {
	exp []uint16 // exp[i] = alpha^i, doubled: length 2*(Order16-1)
	log []int    // log[a] for a != 0
}

var _tables16 = buildTables16()

func buildTables16() *tables16 {
	t := &tables16{
		exp: make([]uint16, 2*(Order16-1)),
		log: make([]int, Order16),
	}
	x := 1
	for i := 0; i < Order16-1; i++ {
		t.exp[i] = uint16(x)
		t.exp[i+Order16-1] = uint16(x)
		t.log[x] = i
		x <<= 1
		if x&Order16 != 0 {
			x ^= polynomial16
		}
	}
	return t
}

// Add16 returns a+b in GF(2^16) (XOR; also subtraction).
func Add16(a, b uint16) uint16 { return a ^ b }

// Mul16 returns a*b in GF(2^16).
func Mul16(a, b uint16) uint16 {
	if a == 0 || b == 0 {
		return 0
	}
	return _tables16.exp[_tables16.log[a]+_tables16.log[b]]
}

// Div16 returns a/b in GF(2^16). It panics if b is zero.
func Div16(a, b uint16) uint16 {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	return _tables16.exp[_tables16.log[a]-_tables16.log[b]+Order16-1]
}

// Inv16 returns the multiplicative inverse of a in GF(2^16). It panics if a
// is zero.
func Inv16(a uint16) uint16 {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return _tables16.exp[Order16-1-_tables16.log[a]]
}

// Pow16 returns a^e in GF(2^16) for e >= 0, with a^0 = 1.
func Pow16(a uint16, e int) uint16 {
	if e < 0 {
		panic("gf: negative exponent")
	}
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return _tables16.exp[(_tables16.log[a]*e)%(Order16-1)]
}

// MulSlice16 sets dst[i] = c * src[i] for every position. The slices must
// have equal length.
func MulSlice16(c uint16, dst, src []uint16) {
	assertSameLen(len(dst), len(src))
	if c == 0 {
		clear(dst)
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	lc := _tables16.log[c]
	for i, s := range src {
		if s == 0 {
			dst[i] = 0
			continue
		}
		dst[i] = _tables16.exp[lc+_tables16.log[s]]
	}
}

// MulAddSlice16 sets dst[i] ^= c * src[i] for every position. The slices
// must have equal length.
func MulAddSlice16(c uint16, dst, src []uint16) {
	assertSameLen(len(dst), len(src))
	if c == 0 {
		return
	}
	lc := _tables16.log[c]
	for i, s := range src {
		if s == 0 {
			continue
		}
		dst[i] ^= _tables16.exp[lc+_tables16.log[s]]
	}
}
