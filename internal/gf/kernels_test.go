package gf

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// kernelLens covers the word-loop boundary cases: empty, sub-word, exactly
// one word, word+1, and a large unaligned length.
var kernelLens = []int{0, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 4096 + 3}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// TestKernelsDifferential checks the fast kernels against the scalar
// reference implementations for every coefficient across unaligned lengths.
func TestKernelsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range kernelLens {
		src := randBytes(rng, n)
		base := randBytes(rng, n)
		for c := 0; c < 256; c++ {
			coeff := byte(c)

			fastDst := append([]byte(nil), base...)
			refDst := append([]byte(nil), base...)
			mulAddSliceFast(coeff, fastDst, src)
			MulAddSliceRef(coeff, refDst, src)
			if !bytes.Equal(fastDst, refDst) {
				t.Fatalf("MulAddSlice(%#x) diverges at len %d", coeff, n)
			}

			fastDst = append(fastDst[:0], base...)
			refDst = append(refDst[:0], base...)
			mulSliceFast(coeff, fastDst, src)
			MulSliceRef(coeff, refDst, src)
			if !bytes.Equal(fastDst, refDst) {
				t.Fatalf("MulSlice(%#x) diverges at len %d", coeff, n)
			}
		}

		fastDst := append([]byte(nil), base...)
		refDst := append([]byte(nil), base...)
		addSliceFast(fastDst, src)
		AddSliceRef(refDst, src)
		if !bytes.Equal(fastDst, refDst) {
			t.Fatalf("AddSlice diverges at len %d", n)
		}
	}
}

// TestKernelsAliased checks the documented aliasing contract (dst == src)
// for the dispatching entry points under both kernel selections.
func TestKernelsAliased(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, fast := range []bool{true, false} {
		prev := SetFastKernels(fast)
		for _, n := range kernelLens {
			orig := randBytes(rng, n)
			for _, coeff := range []byte{0, 1, 2, 0x53, 0xff} {
				want := make([]byte, n)
				MulSlice(coeff, want, orig)
				got := append([]byte(nil), orig...)
				MulSlice(coeff, got, got)
				if !bytes.Equal(got, want) {
					t.Fatalf("fast=%v: aliased MulSlice(%#x) diverges at len %d", fast, coeff, n)
				}

				// dst == src turns MulAddSlice into dst[i] ^= c*dst[i]
				// = (c+1)*dst[i].
				want = make([]byte, n)
				MulSlice(coeff^1, want, orig)
				got = append(got[:0], orig...)
				MulAddSlice(coeff, got, got)
				if !bytes.Equal(got, want) {
					t.Fatalf("fast=%v: aliased MulAddSlice(%#x) diverges at len %d", fast, coeff, n)
				}
			}
			// dst == src zeroes under AddSlice.
			got := append([]byte(nil), orig...)
			AddSlice(got, got)
			for i, v := range got {
				if v != 0 {
					t.Fatalf("fast=%v: aliased AddSlice non-zero at %d of len %d", fast, i, n)
				}
			}
		}
		SetFastKernels(prev)
	}
}

// TestSetFastKernels checks the toggle routes the public entry points to the
// selected implementation and reports the previous setting.
func TestSetFastKernels(t *testing.T) {
	if !FastKernels() {
		t.Fatal("fast kernels should be the default")
	}
	if prev := SetFastKernels(false); !prev {
		t.Fatal("SetFastKernels(false) should report the fast default")
	}
	if FastKernels() {
		t.Fatal("scalar kernels should be selected")
	}
	if prev := SetFastKernels(true); prev {
		t.Fatal("SetFastKernels(true) should report the scalar setting")
	}
}

// FuzzMulAddSlice cross-checks the fast and scalar MulAddSlice on arbitrary
// inputs, including the aliased case.
func FuzzMulAddSlice(f *testing.F) {
	f.Add(byte(0x57), []byte("seed corpus payload"), false)
	f.Add(byte(0), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, true)
	f.Add(byte(1), []byte{0xff}, false)
	f.Fuzz(func(t *testing.T, c byte, data []byte, aliased bool) {
		half := len(data) / 2
		src, base := data[:half], data[half:half*2]
		if aliased {
			base = src
		}
		fastDst := append([]byte(nil), base...)
		refDst := append([]byte(nil), base...)
		fastSrc, refSrc := src, src
		if aliased {
			fastSrc, refSrc = fastDst, refDst
		}
		prev := SetFastKernels(true)
		MulAddSlice(c, fastDst, fastSrc)
		SetFastKernels(false)
		MulAddSlice(c, refDst, refSrc)
		SetFastKernels(prev)
		if !bytes.Equal(fastDst, refDst) {
			t.Fatalf("MulAddSlice(%#x, len %d, aliased=%v) diverges", c, half, aliased)
		}
	})
}

// FuzzMulSlice cross-checks the fast and scalar MulSlice.
func FuzzMulSlice(f *testing.F) {
	f.Add(byte(0x9c), []byte("another seed payload"))
	f.Fuzz(func(t *testing.T, c byte, data []byte) {
		fastDst := make([]byte, len(data))
		refDst := make([]byte, len(data))
		prev := SetFastKernels(true)
		MulSlice(c, fastDst, data)
		SetFastKernels(false)
		MulSlice(c, refDst, data)
		SetFastKernels(prev)
		if !bytes.Equal(fastDst, refDst) {
			t.Fatalf("MulSlice(%#x, len %d) diverges", c, len(data))
		}
	})
}

// FuzzAddSlice cross-checks the fast and scalar AddSlice.
func FuzzAddSlice(f *testing.F) {
	f.Add([]byte("xor seed payload with enough bytes"))
	f.Fuzz(func(t *testing.T, data []byte) {
		half := len(data) / 2
		src, base := data[:half], data[half:half*2]
		fastDst := append([]byte(nil), base...)
		refDst := append([]byte(nil), base...)
		prev := SetFastKernels(true)
		AddSlice(fastDst, src)
		SetFastKernels(false)
		AddSlice(refDst, src)
		SetFastKernels(prev)
		if !bytes.Equal(fastDst, refDst) {
			t.Fatalf("AddSlice(len %d) diverges", half)
		}
	})
}

func benchKernel(b *testing.B, size int, fast bool, fn func(dst, src []byte)) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	src := randBytes(rng, size)
	dst := randBytes(rng, size)
	prev := SetFastKernels(fast)
	defer SetFastKernels(prev)
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(dst, src)
	}
}

func BenchmarkKernels(b *testing.B) {
	for _, size := range []int{4 << 10, 64 << 10, 1 << 20} {
		for _, fast := range []bool{false, true} {
			name := "scalar"
			if fast {
				name = "fast"
			}
			b.Run(fmt.Sprintf("MulAddSlice/%dKiB/%s", size>>10, name), func(b *testing.B) {
				benchKernel(b, size, fast, func(dst, src []byte) { MulAddSlice(0x57, dst, src) })
			})
			b.Run(fmt.Sprintf("MulSlice/%dKiB/%s", size>>10, name), func(b *testing.B) {
				benchKernel(b, size, fast, func(dst, src []byte) { MulSlice(0x57, dst, src) })
			})
			b.Run(fmt.Sprintf("AddSlice/%dKiB/%s", size>>10, name), func(b *testing.B) {
				benchKernel(b, size, fast, AddSlice)
			})
		}
	}
}
