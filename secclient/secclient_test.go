package secclient_test

// Error-path coverage for the public SDK over real TCP: the store error
// taxonomy must survive the wire and come back from the Client's methods
// as errors.Is-testable sentinels — ErrBusy when a gateway's writer queue
// is saturated, ErrConflict when an optimistic CommitAt expectation is
// stale, and ErrNotServed when the dialed peer is a storage node rather
// than a gateway. Transport-level unit tests cover the codecs; these
// tests assert the contract application code actually programs against.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/secarchive/sec/internal/gateway"
	"github.com/secarchive/sec/internal/store"
	"github.com/secarchive/sec/internal/testutil"
	"github.com/secarchive/sec/internal/transport"
	"github.com/secarchive/sec/secclient"
)

// gatedNode wraps a node so every Put parks until the gate is released,
// closing entered (once, across all nodes) when the first Put arrives.
// Embedding the interface (not the concrete type) hides BatchNode, so
// commits take the per-shard path and block inside Put. It models a slow
// storage device that keeps a writer slot occupied. The entered signal —
// not an Info poll — is how the test learns the slot is held: a commit
// parked inside CommitContext holds the archive's internal lock, so
// metadata reads would park behind it too.
type gatedNode struct {
	store.Node
	gate    chan struct{}
	entered chan struct{}
	once    *sync.Once
}

func (g *gatedNode) Put(ctx context.Context, id store.ShardID, data []byte) error {
	g.once.Do(func() { close(g.entered) })
	select {
	case <-g.gate:
	case <-ctx.Done():
		return ctx.Err()
	}
	return g.Node.Put(ctx, id, data)
}

// startGateway serves a gateway over loopback TCP on the given cluster
// and returns its address.
func startGateway(t *testing.T, cluster *store.Cluster, maxQueued int) string {
	t.Helper()
	testutil.CheckGoroutineLeaks(t)
	gw, err := gateway.New(gateway.Config{Cluster: cluster, Root: t.TempDir(), MaxQueuedWriters: maxQueued})
	if err != nil {
		t.Fatal(err)
	}
	server := transport.NewServer(nil, transport.WithArchiveBackend(gw))
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = server.Close()
		_ = gw.Close(context.Background())
	})
	t.Cleanup(func() { testutil.CheckConnDrain(t, "gateway server", server.ConnCount) })
	return addr.String()
}

func dial(t *testing.T, addr string) *secclient.Client {
	t.Helper()
	client := secclient.Dial(addr, secclient.WithTimeout(30*time.Second))
	t.Cleanup(func() { _ = client.Close() })
	return client
}

// TestClientErrBusyUnderSaturatedWriterQueue saturates an archive's
// writer queue (capacity 1) by parking a commit inside a gated node's
// Put, then asserts the next commit through the SDK is rejected with a
// typed ErrBusy — immediately, not after queueing.
func TestClientErrBusyUnderSaturatedWriterQueue(t *testing.T) {
	gate := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	nodes := make([]store.Node, 6)
	for i := range nodes {
		nodes[i] = &gatedNode{
			Node:    store.NewMemNode(fmt.Sprintf("gated-%d", i)),
			gate:    gate,
			entered: entered,
			once:    &once,
		}
	}
	addr := startGateway(t, store.NewCluster(nodes), 1)
	client := dial(t, addr)
	ctx := t.Context()

	// Create writes no shards, so it is safe while the gate is closed;
	// only commits park.
	info, err := client.Create(ctx, "busy", secclient.Spec{N: 6, K: 4, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, info.Capacity)

	// First commit parks inside Put while holding the only writer slot.
	writer := dial(t, addr)
	var wg sync.WaitGroup
	wg.Add(1)
	var firstErr error
	go func() {
		defer wg.Done()
		_, firstErr = writer.Commit(ctx, "busy", payload)
	}()
	// Wait until the commit reaches a node Put: by then it holds the only
	// writer slot, since the gateway acquires the slot before encoding.
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("first commit never reached a node Put")
	}

	// The queue (capacity 1) is full: the SDK must surface a typed busy
	// rejection.
	_, err = client.Commit(ctx, "busy", payload)
	if !errors.Is(err, store.ErrBusy) {
		t.Fatalf("saturated queue: err = %v, want ErrBusy", err)
	}
	// And ErrBusy must NOT be conflated with the other sentinels.
	if errors.Is(err, store.ErrConflict) || errors.Is(err, store.ErrNotFound) {
		t.Errorf("busy rejection also matches conflict/notfound: %v", err)
	}

	// Release the gate: the parked commit completes cleanly, proving the
	// rejection did not corrupt the writer slot.
	close(gate)
	wg.Wait()
	if firstErr != nil {
		t.Fatalf("parked commit failed after release: %v", firstErr)
	}
	if _, err := client.Commit(ctx, "busy", payload); err != nil {
		t.Fatalf("commit after release: %v", err)
	}
}

// TestClientErrConflictOnStaleCommitAt drives optimistic concurrency
// through the SDK: a CommitAt whose expectation is stale must come back
// as a typed ErrConflict over the wire, and the archive must be left
// exactly as the winner wrote it.
func TestClientErrConflictOnStaleCommitAt(t *testing.T) {
	addr := startGateway(t, store.NewMemCluster(6), 0)
	client := dial(t, addr)
	ctx := t.Context()
	info, err := client.Create(ctx, "opt", secclient.Spec{N: 6, K: 4, BlockSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, info.Capacity)
	for i := range payload {
		payload[i] = 0xAB
	}
	if _, err := client.CommitAt(ctx, "opt", 0, payload); err != nil {
		t.Fatalf("first CommitAt(expect=0): %v", err)
	}
	// A second writer with the same stale snapshot must lose, typed.
	loser := dial(t, addr)
	_, err = loser.CommitAt(ctx, "opt", 0, payload)
	if !errors.Is(err, store.ErrConflict) {
		t.Fatalf("stale CommitAt: err = %v, want ErrConflict", err)
	}
	if errors.Is(err, store.ErrBusy) {
		t.Errorf("conflict also matches busy: %v", err)
	}
	// The conflict changed nothing: still exactly one version, correct
	// bytes, and a fresh CommitAt with the right expectation succeeds.
	got, err := loser.Latest(ctx, "opt")
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 1 {
		t.Fatalf("conflicted archive has %d versions, want 1", got.Version)
	}
	if _, err := loser.CommitAt(ctx, "opt", 1, payload); err != nil {
		t.Fatalf("CommitAt with corrected expectation: %v", err)
	}
}

// TestClientErrNotServedAgainstLegacyPeer dials a storage-node server —
// a peer that answers pings but serves no archive ops, like a gateway
// predating them — and asserts every archive method fails with a typed
// ErrNotServed while Available still reports the peer alive.
func TestClientErrNotServedAgainstLegacyPeer(t *testing.T) {
	testutil.CheckGoroutineLeaks(t)
	server := transport.NewServer(store.NewMemNode("legacy"))
	addr, err := server.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	t.Cleanup(func() { testutil.CheckConnDrain(t, "legacy server", server.ConnCount) })
	client := dial(t, addr.String())
	ctx := t.Context()

	if !client.Available(ctx) {
		t.Fatal("legacy peer does not answer pings")
	}
	if _, err := client.Create(ctx, "a", secclient.Spec{N: 6, K: 4, BlockSize: 8}); !errors.Is(err, secclient.ErrNotServed) {
		t.Errorf("Create = %v, want ErrNotServed", err)
	}
	if _, err := client.Commit(ctx, "a", []byte("x")); !errors.Is(err, secclient.ErrNotServed) {
		t.Errorf("Commit = %v, want ErrNotServed", err)
	}
	if _, err := client.Latest(ctx, "a"); !errors.Is(err, secclient.ErrNotServed) {
		t.Errorf("Latest = %v, want ErrNotServed", err)
	}
	if _, err := client.Log(ctx, "a"); !errors.Is(err, secclient.ErrNotServed) {
		t.Errorf("Log = %v, want ErrNotServed", err)
	}
	if _, err := client.Info(ctx, "a"); !errors.Is(err, secclient.ErrNotServed) {
		t.Errorf("Info = %v, want ErrNotServed", err)
	}
}
