// Package secclient is the public SDK for SEC archive gateways: one
// Client API that works identically against a remote secgw daemon over
// TCP (Dial) and against a gateway embedded in the same process (Embed).
// The CLI (cmd/seccli) is built entirely on this package, so local and
// remote use share one code path.
//
// Remote clients reuse the transport's pooled-connection machinery:
// connections are pooled and kept alive, per-request contexts map onto
// wire deadlines (cancellation interrupts in-flight I/O), transport-level
// failures retry under a configurable policy, and responses larger than
// one frame stream across bounded continuation frames. Failures carry
// the store.ShardError taxonomy: errors.Is(err, sec.ErrBusy) detects a
// full writer queue, sec.ErrConflict a stale optimistic precondition,
// sec.ErrNotFound an unknown archive or version.
package secclient

import (
	"context"
	"time"

	"github.com/secarchive/sec/internal/core"
	"github.com/secarchive/sec/internal/store"
	"github.com/secarchive/sec/internal/transport"
)

// Backend is the archive-level service contract a Client speaks: the
// remote wire client and the embedded gateway both implement it.
type Backend = transport.ArchiveBackend

// Spec describes the configuration of an archive to create.
type Spec = transport.ArchiveSpec

// Version is one retrieved version with its retrieval accounting.
type Version = transport.ArchiveVersion

// LogEntry describes one version in an archive's history.
type LogEntry = transport.ArchiveLogEntry

// Info describes an archive and the cluster behind it.
type Info = transport.ArchiveInfo

// NodeStatus pairs a node health snapshot with a liveness probe.
type NodeStatus = transport.ArchiveNodeStatus

// CompactReport is the result of a compaction pass.
type CompactReport = transport.CompactReport

// CommitInfo reports what a commit stored.
type CommitInfo = core.CommitInfo

// RetrievalStats is the read accounting of one retrieval.
type RetrievalStats = core.RetrievalStats

// ScrubReport is the result of a scrub pass.
type ScrubReport = core.ScrubReport

// RepairReport is the result of a node repair pass.
type RepairReport = core.RepairReport

// Manifest is the serializable description of an archive.
type Manifest = core.Manifest

// RetryPolicy shapes exponential backoff for transport-level failures of
// a remote client.
type RetryPolicy = store.RetryPolicy

// ErrNotServed reports that the dialed peer does not serve archive ops
// (a storage node, or a gateway predating them).
var ErrNotServed = transport.ErrNotServed

// Option configures a Dial'ed client.
type Option func(*dialConfig)

type dialConfig struct {
	id   string
	opts []transport.ClientOption
}

// WithID sets the identifier failures are attributed to (the ShardError
// Node field); it defaults to "secgw@<addr>".
func WithID(id string) Option {
	return func(c *dialConfig) { c.id = id }
}

// WithTimeout bounds each request round trip (in addition to any context
// deadline, whichever is earlier).
func WithTimeout(d time.Duration) Option {
	return func(c *dialConfig) { c.opts = append(c.opts, transport.WithTimeout(d)) }
}

// WithPoolSize caps the client's pooled connections to the gateway.
func WithPoolSize(size int) Option {
	return func(c *dialConfig) { c.opts = append(c.opts, transport.WithPoolSize(size)) }
}

// WithRetryPolicy makes the client retry transport-level failures
// (connection loss, timeouts) under p. Errors the gateway answered with —
// busy, conflict, not found — are never retried here; they are the
// caller's decision.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *dialConfig) { c.opts = append(c.opts, transport.WithRetryPolicy(p)) }
}

// Client serves archive operations against a gateway. Methods are safe
// for concurrent use.
type Client struct {
	backend Backend
	remote  *transport.ArchiveClient // nil when embedded
}

// Dial returns a client for the gateway at addr. No connection is made
// until the first operation; use Available to probe liveness.
func Dial(addr string, opts ...Option) *Client {
	cfg := dialConfig{id: "secgw@" + addr}
	for _, opt := range opts {
		opt(&cfg)
	}
	remote := transport.NewArchiveClient(cfg.id, addr, cfg.opts...)
	return &Client{backend: remote, remote: remote}
}

// Embed returns a client backed by an in-process gateway (or any other
// Backend). Close on an embedded client is a no-op: the backend's owner
// manages its lifecycle.
func Embed(b Backend) *Client {
	return &Client{backend: b}
}

// Close releases the client's connections. In-flight operations fail
// fast.
func (c *Client) Close() error {
	if c.remote == nil {
		return nil
	}
	return c.remote.Close()
}

// Available reports whether the gateway answers a liveness probe.
// Embedded clients are always available.
func (c *Client) Available(ctx context.Context) bool {
	if c.remote == nil {
		return true
	}
	return c.remote.Available(ctx)
}

// Create builds a fresh archive under the gateway.
func (c *Client) Create(ctx context.Context, name string, spec Spec) (Info, error) {
	return c.backend.Create(ctx, name, spec)
}

// Commit appends object as the archive's next version.
func (c *Client) Commit(ctx context.Context, name string, object []byte) (CommitInfo, error) {
	return c.backend.Commit(ctx, name, -1, object)
}

// CommitAt appends object only if the archive currently holds exactly
// expect versions; a stale expectation fails with a
// store.ErrConflict-wrapping error (optimistic concurrency).
func (c *Client) CommitAt(ctx context.Context, name string, expect int, object []byte) (CommitInfo, error) {
	return c.backend.Commit(ctx, name, expect, object)
}

// Retrieve decodes one version; version 0 means the latest at request
// time (the version served is reported in the result).
func (c *Client) Retrieve(ctx context.Context, name string, version int) (Version, error) {
	return c.backend.Retrieve(ctx, name, version)
}

// Latest decodes the newest version.
func (c *Client) Latest(ctx context.Context, name string) (Version, error) {
	return c.backend.Retrieve(ctx, name, 0)
}

// RetrieveAll decodes versions 1..version (0 = through the latest).
func (c *Client) RetrieveAll(ctx context.Context, name string, version int) ([][]byte, RetrievalStats, error) {
	return c.backend.RetrieveAll(ctx, name, version)
}

// Log returns the archive's version history with per-version chain
// costs.
func (c *Client) Log(ctx context.Context, name string) ([]LogEntry, error) {
	return c.backend.Log(ctx, name)
}

// Info describes the archive and the health of the cluster behind it.
func (c *Client) Info(ctx context.Context, name string) (Info, error) {
	return c.backend.Info(ctx, name)
}

// Compact bounds the archive's chain depth to maxChain (0 = the
// archive's configured policy).
func (c *Client) Compact(ctx context.Context, name string, maxChain int) (CompactReport, error) {
	return c.backend.Compact(ctx, name, maxChain)
}

// Scrub verifies every stored shard, optionally repairing damage.
func (c *Client) Scrub(ctx context.Context, name string, repair bool) (ScrubReport, error) {
	return c.backend.Scrub(ctx, name, repair)
}

// Repair reconstructs the archive's shards on the given cluster node.
func (c *Client) Repair(ctx context.Context, name string, node int) (RepairReport, error) {
	return c.backend.Repair(ctx, name, node)
}
