package sec_test

// Benchmark harness: one benchmark per table/figure of the paper (each
// regenerates the experiment end to end; see internal/experiments and
// EXPERIMENTS.md) plus micro-benchmarks for the coding substrates and the
// archive hot paths, including the ablation benches DESIGN.md calls out.

import (
	"fmt"
	"math/rand"
	"testing"

	sec "github.com/secarchive/sec"
	"github.com/secarchive/sec/internal/erasure"
	"github.com/secarchive/sec/internal/experiments"
	"github.com/secarchive/sec/internal/gf"
	"github.com/secarchive/sec/internal/sparse"
	"github.com/secarchive/sec/internal/store"
	"github.com/secarchive/sec/internal/transport"
	"github.com/secarchive/sec/internal/wide"
)

// benchExperiment regenerates one paper table/figure per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		table, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable1(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkFig2(b *testing.B)     { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)     { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)     { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)     { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)     { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)     { benchExperiment(b, "fig9") }
func BenchmarkCensusVA(b *testing.B) { benchExperiment(b, "census") }

// Ablation experiments (see DESIGN.md section 5).
func BenchmarkAblationPuncture(b *testing.B) { benchExperiment(b, "puncture") }
func BenchmarkAblationReversed(b *testing.B) { benchExperiment(b, "reversed") }

// System-measured experiments: the formulas validated on live archives.
func BenchmarkFig4System(b *testing.B)       { benchExperiment(b, "fig4sys") }
func BenchmarkLSweep(b *testing.B)           { benchExperiment(b, "lsweep") }
func BenchmarkRepairSimulation(b *testing.B) { benchExperiment(b, "repair") }

// --- substrate micro-benchmarks ---

func BenchmarkGFMulAddSlice(b *testing.B) {
	src := make([]byte, 64<<10)
	dst := make([]byte, 64<<10)
	rand.New(rand.NewSource(1)).Read(src)
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gf.MulAddSlice(0x57, dst, src)
	}
}

// --- old-vs-new kernel benches (see DESIGN.md section 2) ---
//
// Each benchmark reports allocations and runs once with the scalar
// reference kernels and once with the vectorized kernels, at 4 KiB, 64 KiB
// and 1 MiB blocks. The Into variants use pooled shard buffers and must
// stay at 0 allocs/op in steady state.

var kernelBenchSizes = []int{4 << 10, 64 << 10, 1 << 20}

func kernelBenchName(blockSize int, fast bool) string {
	kernel := "scalar"
	if fast {
		kernel = "fast"
	}
	if blockSize >= 1<<20 {
		return fmt.Sprintf("%dMiB/%s", blockSize>>20, kernel)
	}
	return fmt.Sprintf("%dKiB/%s", blockSize>>10, kernel)
}

func benchCodingKernels(b *testing.B, run func(b *testing.B, blockSize int)) {
	b.Helper()
	for _, blockSize := range kernelBenchSizes {
		for _, fast := range []bool{false, true} {
			b.Run(kernelBenchName(blockSize, fast), func(b *testing.B) {
				prev := gf.SetFastKernels(fast)
				defer gf.SetFastKernels(prev)
				run(b, blockSize)
			})
		}
	}
}

func benchBlocks(k, blockSize int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	blocks := make([][]byte, k)
	for i := range blocks {
		blocks[i] = make([]byte, blockSize)
		rng.Read(blocks[i])
	}
	return blocks
}

func BenchmarkEncodeKernels(b *testing.B) {
	benchCodingKernels(b, func(b *testing.B, blockSize int) {
		code, err := erasure.New(erasure.NonSystematicCauchy, 20, 10)
		if err != nil {
			b.Fatal(err)
		}
		blocks := benchBlocks(10, blockSize, 21)
		b.SetBytes(int64(10 * blockSize))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := code.Encode(blocks); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkEncodeInto(b *testing.B) {
	benchCodingKernels(b, func(b *testing.B, blockSize int) {
		code, err := erasure.New(erasure.NonSystematicCauchy, 20, 10)
		if err != nil {
			b.Fatal(err)
		}
		blocks := benchBlocks(10, blockSize, 22)
		shards := erasure.GetBuffers(20, blockSize)
		defer shards.Release()
		b.SetBytes(int64(10 * blockSize))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := code.EncodeInto(blocks, shards.Blocks); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDecodeFullKernels(b *testing.B) {
	benchCodingKernels(b, func(b *testing.B, blockSize int) {
		code, err := erasure.New(erasure.NonSystematicCauchy, 20, 10)
		if err != nil {
			b.Fatal(err)
		}
		blocks := benchBlocks(10, blockSize, 23)
		shards, err := code.Encode(blocks)
		if err != nil {
			b.Fatal(err)
		}
		rows := []int{1, 3, 5, 7, 9, 11, 13, 15, 17, 19}
		sub := make([][]byte, len(rows))
		for i, r := range rows {
			sub[i] = shards[r]
		}
		b.SetBytes(int64(10 * blockSize))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := code.DecodeFull(rows, sub); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkDecodeFullInto(b *testing.B) {
	benchCodingKernels(b, func(b *testing.B, blockSize int) {
		code, err := erasure.New(erasure.NonSystematicCauchy, 20, 10)
		if err != nil {
			b.Fatal(err)
		}
		blocks := benchBlocks(10, blockSize, 24)
		shards, err := code.Encode(blocks)
		if err != nil {
			b.Fatal(err)
		}
		rows := []int{1, 3, 5, 7, 9, 11, 13, 15, 17, 19}
		sub := make([][]byte, len(rows))
		for i, r := range rows {
			sub[i] = shards[r]
		}
		dst := erasure.GetBuffers(10, blockSize)
		defer dst.Release()
		b.SetBytes(int64(10 * blockSize))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := code.DecodeFullInto(rows, sub, dst.Blocks); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchEncode(b *testing.B, kind erasure.Kind, n, k, blockSize int) {
	b.Helper()
	code, err := erasure.New(kind, n, k)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	blocks := make([][]byte, k)
	for i := range blocks {
		blocks[i] = make([]byte, blockSize)
		rng.Read(blocks[i])
	}
	b.SetBytes(int64(k * blockSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.Encode(blocks); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeCauchy6_3(b *testing.B) { benchEncode(b, erasure.NonSystematicCauchy, 6, 3, 4096) }
func BenchmarkEncodeCauchy20_10(b *testing.B) {
	benchEncode(b, erasure.NonSystematicCauchy, 20, 10, 4096)
}
func BenchmarkEncodeSystematic20_10(b *testing.B) {
	benchEncode(b, erasure.SystematicCauchy, 20, 10, 4096)
}

func BenchmarkDecodeFull20_10(b *testing.B) {
	code, err := erasure.New(erasure.NonSystematicCauchy, 20, 10)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	blocks := make([][]byte, 10)
	for i := range blocks {
		blocks[i] = make([]byte, 4096)
		rng.Read(blocks[i])
	}
	shards, err := code.Encode(blocks)
	if err != nil {
		b.Fatal(err)
	}
	rows := []int{1, 3, 5, 7, 9, 11, 13, 15, 17, 19}
	sub := make([][]byte, len(rows))
	for i, r := range rows {
		sub[i] = shards[r]
	}
	b.SetBytes(int64(10 * 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.DecodeFull(rows, sub); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: support-enumeration vs Berlekamp-Massey sparse decoding at the
// same I/O (2*gamma shards of a (24,12) code, gamma=3).
func benchSparseDecode(b *testing.B, kind erasure.Kind) {
	b.Helper()
	const (
		n, k, gamma = 24, 12, 3
		blockSize   = 1024
	)
	code, err := erasure.New(kind, n, k)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	z := make([][]byte, k)
	for i := range z {
		z[i] = make([]byte, blockSize)
	}
	for _, j := range rng.Perm(k)[:gamma] {
		rng.Read(z[j])
		z[j][0] |= 1
	}
	shards, err := code.Encode(z)
	if err != nil {
		b.Fatal(err)
	}
	live := make([]int, n)
	for i := range live {
		live[i] = i
	}
	rows := code.SparseReadRows(live, gamma)
	if rows == nil {
		b.Fatal("no sparse read rows")
	}
	sub := make([][]byte, len(rows))
	for i, r := range rows {
		sub[i] = shards[r]
	}
	b.SetBytes(int64(gamma * blockSize))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.DecodeSparse(rows, sub, gamma); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSparseDecodeEnumCauchy(b *testing.B) {
	benchSparseDecode(b, erasure.NonSystematicCauchy)
}

func BenchmarkSparseDecodeSyndromeVandermonde(b *testing.B) {
	benchSparseDecode(b, erasure.NonSystematicVandermonde)
}

// Ablation: generic sparse recovery cost as gamma grows (enumeration is
// C(k,gamma); syndrome decoding is polynomial).
func BenchmarkSparseRecoverEnumByGamma(b *testing.B) {
	const k = 16
	for _, gamma := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("gamma=%d", gamma), func(b *testing.B) {
			code, err := erasure.New(erasure.NonSystematicCauchy, 2*k, k)
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(5))
			z := make([][]byte, k)
			for i := range z {
				z[i] = make([]byte, 64)
			}
			for _, j := range rng.Perm(k)[:gamma] {
				rng.Read(z[j])
				z[j][0] |= 1
			}
			gen := code.Generator()
			rows := make([]int, 2*gamma)
			for i := range rows {
				rows[i] = i
			}
			phi := gen.SelectRows(rows)
			y := phi.MulBlocks(z)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sparse.RecoverEnum(phi, y, gamma); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation: symbol width. The GF(2^16) backend unlocks n+k > 256 at some
// throughput cost; compare encode speed at equal (n,k) and payload.
func BenchmarkEncodeWideGF16_20_10(b *testing.B) {
	code, err := wide.NewCauchy(20, 10)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	blocks := make([][]byte, 10)
	for i := range blocks {
		blocks[i] = make([]byte, 4096)
		rng.Read(blocks[i])
	}
	b.SetBytes(int64(10 * 4096))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := code.Encode(blocks); err != nil {
			b.Fatal(err)
		}
	}
}

// --- archive hot paths ---

func benchArchive(b *testing.B, scheme sec.Scheme) (*sec.Archive, []byte) {
	b.Helper()
	archive, err := sec.NewArchive(sec.ArchiveConfig{
		Scheme:    scheme,
		Code:      sec.NonSystematicCauchy,
		N:         20,
		K:         10,
		BlockSize: 1024,
	}, sec.NewMemCluster(20))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	v := make([]byte, archive.Capacity())
	rng.Read(v)
	if _, err := archive.Commit(v); err != nil {
		b.Fatal(err)
	}
	return archive, v
}

func BenchmarkArchiveCommitSparseDelta(b *testing.B) {
	archive, v := benchArchive(b, sec.BasicSEC)
	rng := rand.New(rand.NewSource(7))
	b.SetBytes(int64(len(v)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, err := sec.SparseEdit(rng, v, 1024, 2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := archive.Commit(next); err != nil {
			b.Fatal(err)
		}
		v = next
	}
}

func BenchmarkArchiveRetrieveLatestSparseChain(b *testing.B) {
	archive, v := benchArchive(b, sec.BasicSEC)
	rng := rand.New(rand.NewSource(8))
	for j := 0; j < 4; j++ {
		next, err := sec.SparseEdit(rng, v, 1024, 2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := archive.Commit(next); err != nil {
			b.Fatal(err)
		}
		v = next
	}
	b.SetBytes(int64(len(v)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := archive.Retrieve(5); err != nil {
			b.Fatal(err)
		}
	}
}

// benchRemoteArchive builds a (20,10) archive whose 20 nodes are real
// RemoteNode clients talking to loopback TCP servers, commits a chain of
// one full version plus four sparse deltas, and measures Retrieve of the
// chain tip. With batching (the default) the whole retrieval costs one
// concurrent liveness ping per node plus one get-batch RPC per node; with
// DisableBatchIO it pays one serial ping per row per object and one get
// RPC per shard over the same topology, so the pair quantifies what
// per-node batching buys on the wire.
func benchRemoteArchive(b *testing.B, disableBatch bool) {
	b.Helper()
	const n, k = 20, 10
	nodes := make([]sec.StorageNode, n)
	for i := 0; i < n; i++ {
		srv := transport.NewServer(store.NewMemNode(fmt.Sprintf("mem-%d", i)))
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		client := transport.NewRemoteNode(fmt.Sprintf("remote-%d", i), addr.String())
		defer client.Close()
		nodes[i] = client
	}
	archive, err := sec.NewArchive(sec.ArchiveConfig{
		Scheme:         sec.BasicSEC,
		Code:           sec.NonSystematicCauchy,
		N:              n,
		K:              k,
		BlockSize:      4096,
		DisableBatchIO: disableBatch,
	}, sec.NewCluster(nodes))
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	v := make([]byte, archive.Capacity())
	rng.Read(v)
	if _, err := archive.Commit(v); err != nil {
		b.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		next, err := sec.SparseEdit(rng, v, 4096, 2)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := archive.Commit(next); err != nil {
			b.Fatal(err)
		}
		v = next
	}
	b.SetBytes(int64(len(v)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := archive.Retrieve(5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkArchiveRetrieveTCPBatched(b *testing.B)  { benchRemoteArchive(b, false) }
func BenchmarkArchiveRetrieveTCPPerShard(b *testing.B) { benchRemoteArchive(b, true) }

func BenchmarkTransportRoundTrip(b *testing.B) {
	srv := transport.NewServer(store.NewMemNode("bench"))
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	client := transport.NewRemoteNode("bench", addr.String())
	defer client.Close()
	id := store.ShardID{Object: "o", Row: 0}
	payload := make([]byte, 4096)
	if err := client.Put(b.Context(), id, payload); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Get(b.Context(), id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRetrieveOldestByChainState measures what compaction buys the
// paper's linear-in-chain-length cost: reading the oldest version of a
// (20,10) Reversed-SEC chain of 1 full + 8 sparse deltas, against the
// same history compacted to MaxChainLength=4.
func BenchmarkRetrieveOldestByChainState(b *testing.B) {
	build := func(b *testing.B, compact bool) *sec.Archive {
		b.Helper()
		archive, err := sec.NewArchive(sec.ArchiveConfig{
			Scheme:    sec.ReversedSEC,
			Code:      sec.NonSystematicCauchy,
			N:         20,
			K:         10,
			BlockSize: 4096,
		}, sec.NewMemCluster(20))
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		object := make([]byte, 10*4096)
		rng.Read(object)
		for j := 0; j < 9; j++ {
			if j > 0 {
				if object, err = sec.SparseEdit(rng, object, 4096, 1); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := archive.CommitContext(b.Context(), object); err != nil {
				b.Fatal(err)
			}
		}
		if compact {
			if _, err := archive.CompactToContext(b.Context(), 4); err != nil {
				b.Fatal(err)
			}
		}
		return archive
	}
	for _, state := range []struct {
		name    string
		compact bool
	}{{"chained", false}, {"compacted", true}} {
		b.Run(state.name, func(b *testing.B) {
			archive := build(b, state.compact)
			b.SetBytes(10 * 4096)
			b.ReportAllocs()
			b.ResetTimer()
			reads := 0
			for i := 0; i < b.N; i++ {
				_, stats, err := archive.RetrieveContext(b.Context(), 1)
				if err != nil {
					b.Fatal(err)
				}
				reads = stats.NodeReads
			}
			b.ReportMetric(float64(reads), "node-reads/op")
		})
	}
}

// BenchmarkCompactPass prices the maintenance operation itself: one full
// compaction of the 9-version chain above (materialize, merge, re-encode,
// swap, GC).
func BenchmarkCompactPass(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	base := make([]byte, 10*4096)
	rng.Read(base)
	history := [][]byte{base}
	object := base
	var err error
	for j := 1; j < 9; j++ {
		if object, err = sec.SparseEdit(rng, object, 4096, 1); err != nil {
			b.Fatal(err)
		}
		history = append(history, object)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		archive, err := sec.NewArchive(sec.ArchiveConfig{
			Scheme:    sec.ReversedSEC,
			Code:      sec.NonSystematicCauchy,
			N:         20,
			K:         10,
			BlockSize: 4096,
		}, sec.NewMemCluster(20))
		if err != nil {
			b.Fatal(err)
		}
		for _, v := range history {
			if _, err := archive.CommitContext(b.Context(), v); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if _, err := archive.CompactToContext(b.Context(), 4); err != nil {
			b.Fatal(err)
		}
	}
}
